"""One-command CI gate: every smoke the workflow runs, runnable locally.

The GitHub workflow used to inline four shell steps (golden bit-identity,
KIPS microbench, lane-batch equivalence, campaign store/trace-cache);
this driver checks them in so ``python benchmarks/ci_smokes.py`` runs the
identical gate on a laptop, and adds the mega-batch equivalence smoke (a
multi-point campaign plan must scatter back bit-identical results with
strictly fewer schedule passes than campaign points, and the CLI's
figures must be byte-identical with ``--mega-batch`` and
``--no-mega-batch``) plus the campaign smoke: the declarative
``Session.run(spec)`` path and the legacy ``ExperimentRunner`` path must
produce byte-identical figure JSON, and dedup re-runs must execute zero
schedule passes.  The ``kernel`` smoke gates the compiled lane kernel:
a heterogeneous-victim campaign must merge into one vectorised pass and
stay bit-identical both with the C kernel and on the NumPy fallback,
and the vectorised schedule compiler must match the reference replay.
The ``store-chaos`` smoke gates the crash-consistent storage subsystem:
per disk backend, a pool campaign checkpointing under I/O fault
injection is SIGKILLed mid-write, resumed to byte-identical figures,
then repaired and verified clean, and the jsonl → sqlite → jsonl
migration round-trip must be lossless.

Each smoke writes ``<name>-smoke.json`` into ``--json-dir`` (default:
current directory) — the workflow uploads them as per-commit artifacts so
the performance trajectory stays inspectable.

Usage::

    PYTHONPATH=src python benchmarks/ci_smokes.py            # all smokes
    PYTHONPATH=src python benchmarks/ci_smokes.py goldens mega-batch
    PYTHONPATH=src python benchmarks/ci_smokes.py --json-dir artifacts
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
BENCHES = os.path.join(ROOT, "benchmarks")
for path in (SRC, BENCHES):  # one-command local use without PYTHONPATH=src
    if path not in sys.path:
        sys.path.insert(0, path)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _cli(args: list[str], **kwargs) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        cwd=ROOT,
        env=_env(),
        capture_output=True,
        text=True,
        **kwargs,
    )


def _write(json_dir: str, name: str, payload: dict) -> None:
    path = os.path.join(json_dir, f"{name}-smoke.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


# --------------------------------------------------------------------------
# Smokes (each returns a list of failure strings; empty = pass)
# --------------------------------------------------------------------------

def smoke_goldens(json_dir: str) -> list[str]:
    """Golden bit-identity suite: both engines must reproduce the locked
    cycle counts and statistics exactly."""
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "tests/integration/test_golden_sim.py",
            "tests/cache/test_engine.py",
        ],
        cwd=ROOT,
        env=_env(),
        capture_output=True,
        text=True,
    )
    _write(
        json_dir,
        "goldens",
        {"returncode": proc.returncode, "tail": proc.stdout[-2000:]},
    )
    if proc.returncode != 0:
        return [f"golden suite failed:\n{proc.stdout[-2000:]}{proc.stderr[-2000:]}"]
    return []


def smoke_kips(json_dir: str) -> list[str]:
    """KIPS microbench: both engines per scheme, zero SimResult
    divergences (timing numbers are informational)."""
    import bench_micro_pipeline

    path = os.path.join(json_dir, "kips-smoke.json")
    code = bench_micro_pipeline.main(["--smoke", "--json", path])
    with open(path, encoding="utf-8") as fh:
        summary = json.load(fh)
    failures = []
    if code != 0:
        failures.append(f"bench_micro_pipeline exited {code}")
    if summary.get("divergences", 1) != 0:
        failures.append(f"KIPS smoke diverged: {summary}")
    return failures


def smoke_lane_batch(json_dir: str) -> list[str]:
    """Lane-batch equivalence: one campaign point at several lane widths
    must match the sequential fused engine lane for lane."""
    import bench_micro_batch

    path = os.path.join(json_dir, "batch-smoke.json")
    code = bench_micro_batch.main(["--smoke", "--json", path])
    with open(path, encoding="utf-8") as fh:
        summary = json.load(fh)
    failures = []
    if code != 0:
        failures.append(f"bench_micro_batch exited {code}")
    if summary.get("divergences", 1) != 0:
        failures.append(f"lane-batch smoke diverged: {summary}")
    return failures


_STORE_ARGS = [
    "fig3",
    "fig8",
    "--instructions",
    "2000",
    "--maps",
    "2",
    "--benchmarks",
    "gzip",
]


def smoke_store(json_dir: str) -> list[str]:
    """Campaign store + trace cache: a second invocation must be pure
    store/cache hits and regenerate byte-identical figures."""
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as store, tempfile.TemporaryDirectory() as traces:
        persist = ["--store", store, "--trace-cache", traces]
        first = _cli(_STORE_ARGS + persist)
        second = _cli(_STORE_ARGS + persist)
        third = _cli(_STORE_ARGS + ["--no-store", "--trace-cache", traces])
        for name, proc in (("first", first), ("second", second), ("third", third)):
            if proc.returncode != 0:
                failures.append(f"{name} run exited {proc.returncode}: {proc.stderr}")
        checks = [
            ("first executes every simulation", "simulations executed=6", first),
            ("first generates the trace", "traces generated=1 loaded=0", first),
            ("second is all store hits", "simulations executed=0", second),
            ("second regenerates no trace", "traces generated=0", second),
            ("third loads the cached trace", "traces generated=0 loaded=1", third),
        ]
        for label, needle, proc in checks:
            if needle not in proc.stderr:
                failures.append(f"{label}: {needle!r} not in stderr: {proc.stderr}")
        for label, proc in (("second", second), ("third", third)):
            if proc.stdout != first.stdout:
                diff = "\n".join(
                    difflib.unified_diff(
                        first.stdout.splitlines(), proc.stdout.splitlines(), lineterm=""
                    )
                )
                failures.append(f"{label} run figures differ from first:\n{diff}")
        _write(
            json_dir,
            "store",
            {
                "ok": not failures,
                "first_stderr": first.stderr.strip(),
                "second_stderr": second.stderr.strip(),
                "third_stderr": third.stderr.strip(),
            },
        )
    return failures


def smoke_mega_batch(json_dir: str) -> list[str]:
    """Mega-batch equivalence across a multi-point plan.

    In-process: every work item of a several-config, two-map campaign —
    the shape that used to pay one schedule pass per point — must come
    back bit-identical to the sequential per-point path
    (``divergences == 0``) while executing strictly fewer schedule
    passes than campaign points.  CLI: figure output must be
    byte-identical with and without ``--mega-batch``.
    """
    from repro.experiments.configs import (
        LV_BASELINE,
        LV_BLOCK,
        LV_BLOCK_V10,
        LV_INCREMENTAL,
        LV_WORD,
    )
    from repro.experiments.runner import ExperimentRunner, RunnerSettings

    settings = RunnerSettings(
        n_instructions=3_000,
        warmup_instructions=1_000,
        n_fault_maps=2,
        benchmarks=("gzip",),
    )
    configs = (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10, LV_INCREMENTAL)
    points = len(settings.benchmarks) * len(configs)

    mega = ExperimentRunner(settings)
    executed = mega.run_mega(configs)
    sequential = ExperimentRunner(settings, lanes=1, mega_batch=False)

    divergences = 0
    compared = 0
    for config in configs:
        indices = (
            range(settings.n_fault_maps) if config.needs_fault_map else (None,)
        )
        for m in indices:
            compared += 1
            if mega.run("gzip", config, m) != sequential.run("gzip", config, m):
                divergences += 1

    failures: list[str] = []
    if divergences:
        failures.append(
            f"{divergences}/{compared} mega-batched results diverged from "
            "the sequential fused engine"
        )
    if mega.simulations_executed != executed or mega.simulations_executed != compared:
        failures.append(
            f"mega plan executed {executed} simulations, expected {compared}"
        )
    if mega.schedule_passes >= points:
        failures.append(
            f"mega campaign took {mega.schedule_passes} schedule passes for "
            f"{points} points (must be strictly fewer)"
        )

    cli_identical = True
    with tempfile.TemporaryDirectory() as traces:
        shared = _STORE_ARGS + ["--no-store", "--trace-cache", traces]
        with_mega = _cli(shared + ["--mega-batch"])
        without = _cli(shared + ["--no-mega-batch"])
        for name, proc in (("mega", with_mega), ("no-mega", without)):
            if proc.returncode != 0:
                failures.append(f"CLI {name} run exited {proc.returncode}: {proc.stderr}")
        if with_mega.stdout != without.stdout:
            cli_identical = False
            diff = "\n".join(
                difflib.unified_diff(
                    without.stdout.splitlines(),
                    with_mega.stdout.splitlines(),
                    lineterm="",
                )
            )
            failures.append(f"--mega-batch figures differ from --no-mega-batch:\n{diff}")

    _write(
        json_dir,
        "mega-batch",
        {
            "divergences": divergences,
            "compared": compared,
            "points": points,
            "schedule_passes_mega": mega.schedule_passes,
            "schedule_passes_sequential": sequential.schedule_passes,
            "cli_byte_identical": cli_identical,
            "ok": not failures,
        },
    )
    return failures


def smoke_campaign(json_dir: str) -> list[str]:
    """Campaign API v2 equivalence.

    The new ``Session.run(spec)`` streaming path and the legacy
    ``ExperimentRunner`` path must produce byte-identical figure JSON
    for every performance figure they share, and a dedup re-run of an
    already-stored campaign must resolve to an empty plan and execute
    zero schedule passes.  The CLI's ``--dry-run`` must simulate
    nothing.
    """
    import dataclasses

    from repro.campaign.session import Session
    from repro.campaign.spec import RunnerSettings
    from repro.experiments.figures import fig8_data, figure_spec
    from repro.experiments.runner import ExperimentRunner

    settings = RunnerSettings(
        n_instructions=3_000,
        warmup_instructions=1_000,
        n_fault_maps=2,
        benchmarks=("gzip",),
    )

    def figure_json(result) -> str:
        return json.dumps(dataclasses.asdict(result), sort_keys=True)

    failures: list[str] = []

    legacy = ExperimentRunner(settings)
    legacy_json = figure_json(fig8_data(legacy))

    session = Session(settings)
    session_json = figure_json(fig8_data(session))
    if session_json != legacy_json:
        failures.append(
            "Session and legacy ExperimentRunner figure JSON differ:\n"
            + "\n".join(
                difflib.unified_diff([legacy_json], [session_json], lineterm="")
            )
        )

    # Dedup re-run: pure store hits, empty plan, zero new schedule passes.
    passes_before = session.schedule_passes
    rerun_plan = session.run_all(figure_spec("fig8", settings))
    rerun_passes = session.schedule_passes - passes_before
    if rerun_plan.pending != 0:
        failures.append(
            f"dedup re-run still plans {rerun_plan.pending} simulations"
        )
    if rerun_passes != 0:
        failures.append(f"dedup re-run executed {rerun_passes} schedule passes")
    if rerun_plan.dedup_hits != rerun_plan.total_points:
        failures.append(
            f"dedup re-run saw {rerun_plan.dedup_hits} store hits for "
            f"{rerun_plan.total_points} points"
        )

    # CLI dry-run: prints the plan, simulates nothing.
    dry = _cli(_STORE_ARGS + ["--no-store", "--dry-run"])
    if dry.returncode != 0:
        failures.append(f"--dry-run exited {dry.returncode}: {dry.stderr}")
    elif "to simulate" not in dry.stdout:
        failures.append(f"--dry-run printed no plan:\n{dry.stdout}")

    _write(
        json_dir,
        "campaign",
        {
            "figure_json_identical": session_json == legacy_json,
            "legacy_schedule_passes": legacy.schedule_passes,
            "session_schedule_passes": passes_before,
            "rerun_pending": rerun_plan.pending,
            "rerun_schedule_passes": rerun_passes,
            "ok": not failures,
        },
    )
    return failures


def smoke_kernel(json_dir: str) -> list[str]:
    """Compiled lane-kernel gate.

    A heterogeneous-victim campaign (block disabling plus the 6T and
    10T victim-cache rows over two fault maps — six lanes) must merge
    into ONE vectorised pass group and scatter back bit-identical to
    the sequential fused runs, twice: once with the compiled C lane
    kernel active (when buildable) and once forced onto the NumPy
    fallback (``REPRO_NO_CKERNEL=1``).  The vectorised pass-1 schedule
    compiler must also match the reference replay, ``.npz`` payload
    included.
    """
    import io

    import numpy as np

    from repro.campaign.session import Session
    from repro.campaign.spec import CampaignSpec
    from repro.cpu import frontend, lane_kernel
    from repro.experiments.configs import LV_BLOCK, LV_BLOCK_V6, LV_BLOCK_V10
    from repro.experiments.runner import ExperimentRunner, RunnerSettings

    settings = RunnerSettings(
        n_instructions=3_000,
        warmup_instructions=1_000,
        n_fault_maps=2,
        benchmarks=("gzip",),
    )
    configs = (LV_BLOCK, LV_BLOCK_V6, LV_BLOCK_V10)
    items = [(config, m) for config in configs for m in range(2)]

    sequential = ExperimentRunner(settings, lanes=1, mega_batch=False)
    reference = {
        (config.label, m): sequential.run("gzip", config, m) for config, m in items
    }

    def hetero_pass() -> dict:
        with Session(settings) as session:
            plan = session.plan(CampaignSpec.from_settings(settings, configs))
            for group in plan.groups:
                session.execute_group(group)
            divergences = sum(
                session.store.get(session.task_key("gzip", config, m))
                != reference[(config.label, m)]
                for config, m in items
            )
            return {
                "groups": len(plan.groups),
                "merged": all(g.merged for g in plan.groups),
                "passes": session.schedule_passes,
                "divergences": divergences,
            }

    failures: list[str] = []
    kernel_active = lane_kernel.load() is not None
    runs = {"kernel": hetero_pass()}
    saved = os.environ.get("REPRO_NO_CKERNEL")
    os.environ["REPRO_NO_CKERNEL"] = "1"
    try:
        runs["fallback"] = hetero_pass()
    finally:
        if saved is None:
            del os.environ["REPRO_NO_CKERNEL"]
        else:
            os.environ["REPRO_NO_CKERNEL"] = saved
    for engine, run in runs.items():
        if run["divergences"]:
            failures.append(
                f"{engine} engine: {run['divergences']}/{len(items)} lanes "
                "diverged from the sequential fused runs"
            )
        if run["groups"] != 1 or not run["merged"] or run["passes"] != 1:
            failures.append(
                f"{engine} engine: hetero campaign took {run['passes']} passes "
                f"in {run['groups']} group(s) (merged={run['merged']}), "
                "expected one merged pass"
            )

    trace = sequential.trace("gzip")
    offset_bits = sequential.build_pipeline(
        LV_BLOCK, 0
    ).hierarchy.l1i.geometry.offset_bits
    config = sequential.pipeline_config
    vec = frontend._build_schedule(trace, config, offset_bits, 1_000)
    ref = frontend._build_schedule_reference(trace, config, offset_bits, 1_000)
    compile_identical = vec == ref

    def npz_members(schedule) -> dict:
        buffer = io.BytesIO()
        frontend.save_schedule(schedule, buffer)
        buffer.seek(0)
        with np.load(buffer) as data:
            return {k: data[k].tobytes() for k in data.files}

    npz_identical = npz_members(vec) == npz_members(ref)
    if not (compile_identical and npz_identical):
        failures.append(
            "vectorised schedule compile diverged from the reference replay "
            f"(schedule={compile_identical}, npz={npz_identical})"
        )

    _write(
        json_dir,
        "kernel",
        {
            "kernel_active": kernel_active,
            "lanes": len(items),
            "runs": runs,
            "schedule_compile_identical": compile_identical,
            "npz_identical": npz_identical,
            "ok": not failures,
        },
    )
    return failures


def smoke_chaos(json_dir: str) -> list[str]:
    """Resilience gate: a pool campaign under chaos fault injection must
    drain bit-identical to a clean serial run.

    ``REPRO_CHAOS=crash:0.4,seed:3`` deterministically kills real pool
    workers mid-campaign (the seed is chosen so crashes actually fire
    for this campaign's task keys); the resilient ``PoolExecutor`` must
    rebuild the pool, re-roll the injected fate via the pool-generation
    epoch, retry the lost chunks, and land every result byte-identical
    to the serial reference — zero divergences, zero quarantined tasks.
    """
    from repro.campaign.events import TaskRetried, WorkerCrashed
    from repro.campaign.executors import PoolExecutor
    from repro.campaign.resilience import RetryPolicy
    from repro.campaign.session import Session
    from repro.campaign.spec import RunnerSettings
    from repro.experiments.configs import (
        LV_BASELINE,
        LV_BLOCK,
        LV_BLOCK_V10,
        LV_WORD,
    )
    from repro.store import result_to_dict
    from repro.testing.chaos import CHAOS_ENV

    settings = RunnerSettings(
        n_instructions=3_000,
        warmup_instructions=1_000,
        n_fault_maps=2,
        benchmarks=("gzip",),
    )
    configs = (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10)

    def snapshot(session: Session) -> dict:
        return {
            key: result_to_dict(session.store.get(key))
            for key in session.store.keys()
        }

    serial = Session(settings)
    serial.run_all(serial.spec(configs))
    reference = snapshot(serial)

    crashes = retries = 0
    saved = os.environ.get(CHAOS_ENV)
    os.environ[CHAOS_ENV] = "crash:0.4,seed:3"
    try:
        chaotic = Session(settings)
        executor = PoolExecutor(
            2, retry=RetryPolicy(max_attempts=5, backoff_base=0.0)
        )
        for event in chaotic.run(chaotic.spec(configs), executor=executor):
            if isinstance(event, WorkerCrashed):
                crashes += 1
            elif isinstance(event, TaskRetried):
                retries += 1
    finally:
        if saved is None:
            del os.environ[CHAOS_ENV]
        else:
            os.environ[CHAOS_ENV] = saved

    chaos_snapshot = snapshot(chaotic)
    divergences = sum(
        chaos_snapshot.get(key) != value for key, value in reference.items()
    ) + sum(1 for key in chaos_snapshot if key not in reference)

    failures: list[str] = []
    if crashes < 1:
        failures.append(
            "chaos injection fired no worker crash — the smoke proved nothing "
            "(did the injection seam or the seeded schedule change?)"
        )
    if divergences:
        failures.append(
            f"{divergences}/{len(reference)} chaos-run results diverge from "
            "the clean serial store"
        )
    if chaotic.failures:
        failures.append(
            f"{len(chaotic.failures)} task(s) quarantined under crash-only "
            "chaos (crashes must be retried to completion, not quarantined)"
        )

    _write(
        json_dir,
        "chaos",
        {
            "crashes": crashes,
            "retries": retries,
            "points": len(reference),
            "divergences": divergences,
            "quarantined": len(chaotic.failures),
            "ok": not failures,
        },
    )
    return failures


def smoke_store_chaos(json_dir: str) -> list[str]:
    """Crash-consistent storage gate, per backend.

    For each disk backend (jsonl / sharded / sqlite): a pool campaign
    checkpointing under I/O fault injection is SIGKILLed as soon as its
    store file materialises; a chaos-free resume against the survivor
    directory must regenerate figures byte-identical to a storeless
    reference run; ``store repair`` then ``store verify`` must leave
    zero undetected-corrupt records.  Finally the repaired jsonl store
    round-trips jsonl → sqlite → jsonl losslessly (sorted record lines
    byte-identical — the checksums are backend-independent) and figures
    re-derived from each migrated copy are pure store hits, still
    byte-identical.
    """
    import signal
    import time

    failures: list[str] = []
    summary: dict = {"backends": {}}
    chaos_env = _env()
    chaos_env["REPRO_CHAOS"] = (
        "torn-write:0.3,fsync-fail:0.2,partial-append:0.2,seed:7"
    )

    with tempfile.TemporaryDirectory() as tmp:
        traces = os.path.join(tmp, "traces")
        reference = _cli(_STORE_ARGS + ["--no-store", "--trace-cache", traces])
        if reference.returncode != 0:
            return [f"reference run exited {reference.returncode}: {reference.stderr}"]

        def has_bytes(*parts: str) -> bool:
            import glob

            return any(
                os.path.getsize(path) > 0
                for path in glob.glob(os.path.join(*parts))
            )

        # Per backend: a predicate that turns true once the first record
        # bytes reach the durable file (not merely once the store opens).
        write_probes = {
            "jsonl": lambda d: has_bytes(d, "results.jsonl"),
            "sharded": lambda d: has_bytes(d, "shards", "shard-*.jsonl"),
            "sqlite": lambda d: has_bytes(d, "results.sqlite-wal"),
        }
        for backend, probe in write_probes.items():
            directory = os.path.join(tmp, backend)
            persist = [
                "--store", directory, "--store-backend", backend,
                "--trace-cache", traces,
            ]
            victim = subprocess.Popen(
                [sys.executable, "-m", "repro.experiments", *_STORE_ARGS,
                 *persist, "--workers", "2"],
                cwd=ROOT,
                env=chaos_env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            # Kill mid-write: the moment record bytes hit the store the
            # campaign is inside its checkpoint path.  A campaign that
            # finishes before the probe trips still resumes cleanly.
            deadline = time.monotonic() + 60.0
            while victim.poll() is None and time.monotonic() < deadline:
                if probe(directory):
                    victim.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.02)
            victim.wait(timeout=60.0)
            killed = victim.returncode == -signal.SIGKILL

            resume = _cli(_STORE_ARGS + persist)
            if resume.returncode != 0:
                failures.append(
                    f"{backend}: resume exited {resume.returncode}: {resume.stderr}"
                )
            identical = resume.stdout == reference.stdout
            if not identical:
                diff = "\n".join(
                    difflib.unified_diff(
                        reference.stdout.splitlines(),
                        resume.stdout.splitlines(),
                        lineterm="",
                    )
                )
                failures.append(
                    f"{backend}: resumed figures differ from the clean "
                    f"reference:\n{diff}"
                )
            repair = _cli(["store", "repair", directory])
            verify = _cli(["store", "verify", directory])
            if repair.returncode != 0:
                failures.append(f"{backend}: repair exited {repair.returncode}:"
                                f"\n{repair.stdout}{repair.stderr}")
            if verify.returncode != 0:
                failures.append(f"{backend}: verify not clean after repair:"
                                f"\n{verify.stdout}{verify.stderr}")
            summary["backends"][backend] = {
                "killed_mid_write": killed,
                "resume_byte_identical": identical,
                "repair_rc": repair.returncode,
                "verify_rc": verify.returncode,
            }

        # Lossless migration round-trip off the repaired jsonl store.
        jsonl_dir = os.path.join(tmp, "jsonl")
        sqlite_dir = os.path.join(tmp, "migrated-sqlite")
        back_dir = os.path.join(tmp, "migrated-jsonl")
        for src, to, dest in (
            (jsonl_dir, "sqlite", sqlite_dir),
            (sqlite_dir, "jsonl", back_dir),
        ):
            proc = _cli(["store", "migrate", src, "--to", to, "--dest", dest])
            if proc.returncode != 0:
                failures.append(
                    f"migrate {src} -> {to} exited {proc.returncode}:"
                    f"\n{proc.stdout}{proc.stderr}"
                )
        def sorted_lines(directory: str) -> list:
            path = os.path.join(directory, "results.jsonl")
            with open(path, encoding="utf-8") as fh:
                return sorted(fh.read().splitlines())

        round_trip_identical = sorted_lines(jsonl_dir) == sorted_lines(back_dir)
        if not round_trip_identical:
            failures.append(
                "jsonl -> sqlite -> jsonl migration round-trip is not "
                "byte-identical record for record"
            )
        for directory in (sqlite_dir, back_dir):
            rerun = _cli(
                _STORE_ARGS + ["--store", directory, "--trace-cache", traces]
            )
            if rerun.stdout != reference.stdout:
                failures.append(
                    f"figures from migrated store {directory} differ from "
                    "the clean reference"
                )
            if "simulations executed=0" not in rerun.stderr:
                failures.append(
                    f"migrated store {directory} was not pure store hits: "
                    f"{rerun.stderr}"
                )
        summary["migration_round_trip_identical"] = round_trip_identical
        summary["ok"] = not failures
        _write(json_dir, "store-chaos", summary)
    return failures


def smoke_service(json_dir: str) -> list[str]:
    """Campaign service gate: server + concurrent clients + worker chaos.

    A campaign server (DistributedExecutor, 2 partition-writing workers)
    runs under ``REPRO_CHAOS`` worker-crash injection while two
    concurrent ``submit`` clients send overlapping specs.  Each client
    must receive a complete event stream (one PointResult per distinct
    key of its spec); the server must execute the overlap once
    (executed_A + executed_B == |union| < total_A + total_B); a figure
    re-render from the server's store must be pure store hits and
    byte-identical to a chaos-free serial reference; ``store verify``
    must find the store clean.
    """
    import signal
    import time

    failures: list[str] = []
    fig_args = ["--instructions", "2000", "--maps", "2", "--benchmarks", "gzip"]
    spec_a = ["fig8"]
    spec_b = ["fig8", "fig9"]  # overlaps A on every fig8 key

    with tempfile.TemporaryDirectory() as tmp:
        traces = os.path.join(tmp, "traces")
        store = os.path.join(tmp, "store")
        reference = _cli(spec_a + fig_args + ["--no-store", "--trace-cache", traces])
        if reference.returncode != 0:
            return [f"reference run exited {reference.returncode}: {reference.stderr}"]

        chaos_env = _env()
        chaos_env["REPRO_CHAOS"] = "crash:0.4,seed:3"
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments", "serve",
                "--port", "0", "--workers", "2",
                "--store", store, "--store-backend", "sharded",
                "--trace-cache", traces, *fig_args,
            ],
            cwd=ROOT,
            env=chaos_env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        url = None
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                line = server.stdout.readline()
                if line.startswith("serving on "):
                    url = line.split()[-1].strip()
                    break
                if server.poll() is not None:
                    break
            if url is None:
                return ["server never announced its port"]

            def submit(targets):
                return subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.experiments", "submit",
                        *targets, *fig_args, "--url", url,
                    ],
                    cwd=ROOT,
                    env=_env(),  # clients are chaos-free; faults are server-side
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )

            clients = {"A": submit(spec_a), "B": submit(spec_b)}
            streams = {}
            for name, proc in clients.items():
                out, err = proc.communicate(timeout=600)
                if proc.returncode != 0:
                    failures.append(
                        f"client {name} exited {proc.returncode}: {err}"
                    )
                streams[name] = [json.loads(l) for l in out.splitlines() if l.strip()]

            stats = {}
            all_keys = set()
            event_kinds = set()
            for name, lines in streams.items():
                events = [l for l in lines if "event" in l]
                done = next((l for l in lines if l.get("done") is True), None)
                if done is None:
                    failures.append(f"client {name} stream has no done line")
                    continue
                plans = [e for e in events if e["event"] == "PlanReady"]
                points = [e for e in events if e["event"] == "PointResult"]
                event_kinds.update(e["event"] for e in events)
                total = plans[0]["plan"]["total_points"] if plans else -1
                keys = {p["key"] for p in points}
                all_keys |= keys
                if len(keys) != total:
                    failures.append(
                        f"client {name} stream incomplete: {len(keys)} distinct "
                        f"PointResult keys for {total} plan points"
                    )
                if done["failures"] != 0:
                    failures.append(f"client {name} saw {done['failures']} failures")
                stats[name] = {"total_points": total, **done}

            if len(stats) == 2:
                executed = sum(s["simulations_executed"] for s in stats.values())
                standalone = sum(s["total_points"] for s in stats.values())
                if executed != len(all_keys):
                    failures.append(
                        f"union executed once violated: {executed} executed "
                        f"vs {len(all_keys)} distinct keys"
                    )
                if executed >= standalone:
                    failures.append(
                        f"no coalescing: executed {executed} >= standalone "
                        f"sum {standalone}"
                    )
            if not event_kinds & {"WorkerCrashed", "TaskRetried"}:
                failures.append(
                    "chaos fired no WorkerCrashed/TaskRetried events "
                    f"(kinds seen: {sorted(event_kinds)})"
                )
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait()
                failures.append("server ignored SIGTERM")

        # Figures from the chaos-survivor store: pure hits, byte-identical.
        rerun = _cli(spec_a + fig_args + ["--store", store, "--trace-cache", traces])
        if rerun.returncode != 0:
            failures.append(f"rerun exited {rerun.returncode}: {rerun.stderr}")
        if "simulations executed=0" not in rerun.stderr:
            failures.append(f"rerun re-simulated: {rerun.stderr}")
        if rerun.stdout != reference.stdout:
            diff = "\n".join(
                difflib.unified_diff(
                    reference.stdout.splitlines(),
                    rerun.stdout.splitlines(),
                    lineterm="",
                )
            )
            failures.append(f"service figures differ from serial reference:\n{diff}")
        verify = _cli(["store", "verify", store])
        if verify.returncode != 0:
            failures.append(
                f"store verify failed ({verify.returncode}): {verify.stdout}"
            )
        _write(
            json_dir,
            "service",
            {
                "clients": stats,
                "distinct_keys": len(all_keys),
                "event_kinds": sorted(event_kinds),
                "ok": not failures,
            },
        )
    return failures


def smoke_predict(json_dir: str) -> list[str]:
    """Predictive campaign gate: the active loop earns its keep.

    On a fig8 slice (4 configs x 8 benchmarks x 50 fault maps = 816
    points, low fidelity) the ``repro.predict`` loop must

    * converge within its tolerance while simulating at most 50% of the
      grid;
    * land every simulated point in the store, so re-planning the full
      grid dedups exactly the loop's labels;
    * be replayable: ``replay_report`` over the loop's store re-derives
      a byte-identical estimate with zero simulations;
    * beat **random** acquisition at equal simulation budget on the
      figure's average series against the fully-simulated ground truth
      (the paper's fig8 bars), with its own error under a pinned bound.

    Everything is seeded, so the errors are deterministic; the JSON
    artifact records the active-vs-random comparison per run.
    """
    from repro.campaign.session import Session
    from repro.campaign.spec import CampaignSpec, RunnerSettings
    from repro.experiments.configs import (
        LV_BASELINE,
        LV_BLOCK,
        LV_BLOCK_V10,
        LV_WORD,
    )
    from repro.predict import ActiveCampaign, PredictSettings, replay_report

    benchmarks = ("ammp", "art", "equake", "crafty", "gcc", "gzip", "mcf", "vpr")
    settings = RunnerSettings(
        n_instructions=2_000,
        warmup_instructions=500,
        n_fault_maps=50,
        benchmarks=benchmarks,
    )
    spec = CampaignSpec.from_settings(
        settings, (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10), figure="fig8"
    )
    # batch (24) deliberately under cells x maps_step (16 x 3): every
    # round must *choose* cells, so the gate exercises acquisition, not
    # just round-robin depth.
    predict = PredictSettings(
        budget=0.5, batch=24, tolerance=0.01, patience=2, seed=2010
    )
    avg_error_bound = 0.005  # measured 0.0026 on this slice; headroom for drift

    failures: list[str] = []

    def figure_error(estimate: dict, truth: dict) -> "tuple[float, float]":
        """Max abs error on the average series (and the min series,
        informational) across every non-baseline config x benchmark."""
        avg_err = min_err = 0.0
        for label, series in truth.items():
            est = estimate[label]
            for a, b in zip(series["average"], est["average"]):
                avg_err = max(avg_err, abs(a - b))
            if series["minimum"] is not None and est["minimum"] is not None:
                for a, b in zip(series["minimum"], est["minimum"]):
                    min_err = max(min_err, abs(a - b))
        return avg_err, min_err

    with tempfile.TemporaryDirectory() as traces:
        with Session(settings, trace_cache=traces) as session:
            loop = ActiveCampaign(session, spec, predict)
            report = loop.run_all()
            loop.close()
            if report.coverage > 0.5:
                failures.append(
                    f"active loop simulated {report.simulated}/{report.total} "
                    f"({report.coverage:.0%}) — over the 50% ceiling"
                )
            if report.reason not in ("tolerance", "budget"):
                failures.append(f"unexpected stop reason {report.reason!r}")

            # replayable: the store alone re-derives the estimate
            replay = replay_report(session, spec, predict)
            replay_identical = replay.estimate == report.estimate
            if not replay_identical:
                failures.append("replay_report estimate differs from the run's")
            if replay.simulated != 0:
                failures.append(f"replay simulated {replay.simulated} points")

            # economics: a follow-up full campaign is pure dedup ...
            plan = session.plan(spec)
            if plan.dedup_hits != report.labeled:
                failures.append(
                    f"full-grid plan dedups {plan.dedup_hits}, loop "
                    f"labeled {report.labeled} — some work was not durable"
                )
            # ... then fill the grid for ground truth
            session.run_all(spec)
            truth = {}
            for config in (LV_WORD, LV_BLOCK, LV_BLOCK_V10):
                avgs, mins = [], []
                for benchmark in benchmarks:
                    base = session.cached(benchmark, LV_BASELINE, None).cycles
                    if config.needs_fault_map:
                        values = [
                            base / session.cached(benchmark, config, m).cycles
                            for m in range(settings.n_fault_maps)
                        ]
                    else:
                        values = [
                            base / session.cached(benchmark, config, None).cycles
                        ]
                    avgs.append(sum(values) / len(values))
                    mins.append(min(values))
                truth[config.label] = {
                    "average": avgs,
                    "minimum": mins if config.needs_fault_map else None,
                }

        active_avg, active_min = figure_error(report.estimate, truth)
        if active_avg > avg_error_bound:
            failures.append(
                f"active figure error {active_avg:.4f} exceeds the "
                f"{avg_error_bound} bound"
            )

        # the control: random acquisition at the same simulation budget,
        # forced to spend it all (no tolerance stop), on a fresh store
        random_settings = PredictSettings(
            budget=report.coverage,
            batch=24,
            tolerance=1e-9,
            patience=10**6,
            strategy="random",
            initial_maps=predict.initial_maps,
            maps_step=predict.maps_step,
            seed=predict.seed,
        )
        with Session(settings, trace_cache=traces) as control:
            loop = ActiveCampaign(control, spec, random_settings)
            random_report = loop.run_all()
            loop.close()
        random_avg, random_min = figure_error(random_report.estimate, truth)
        if active_avg >= random_avg:
            failures.append(
                f"active acquisition ({active_avg:.4f}) does not beat "
                f"random ({random_avg:.4f}) at equal budget "
                f"({report.simulated} vs {random_report.simulated} sims)"
            )

    _write(
        json_dir,
        "predict",
        {
            "grid": {
                "configs": 4,
                "benchmarks": len(benchmarks),
                "fault_maps": settings.n_fault_maps,
                "total_points": report.total,
            },
            "active": {
                "strategy": predict.strategy,
                "simulated": report.simulated,
                "coverage": report.coverage,
                "rounds": report.rounds,
                "reason": report.reason,
                "avg_series_error": active_avg,
                "min_series_error": active_min,
            },
            "random": {
                "simulated": random_report.simulated,
                "avg_series_error": random_avg,
                "min_series_error": random_min,
            },
            "avg_error_bound": avg_error_bound,
            "replay_identical": replay_identical,
            "full_plan_dedup_hits": plan.dedup_hits,
            "failures": failures,
        },
    )
    return failures


SMOKES = {
    "goldens": smoke_goldens,
    "kips": smoke_kips,
    "lane-batch": smoke_lane_batch,
    "kernel": smoke_kernel,
    "store": smoke_store,
    "mega-batch": smoke_mega_batch,
    "campaign": smoke_campaign,
    "chaos": smoke_chaos,
    "store-chaos": smoke_store_chaos,
    "service": smoke_service,
    "predict": smoke_predict,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "smokes",
        nargs="*",
        choices=[*SMOKES, "all"],
        default="all",
        help="which smokes to run (default: all)",
    )
    parser.add_argument(
        "--json-dir",
        default=".",
        metavar="DIR",
        help="directory for the <name>-smoke.json artifacts (default: .)",
    )
    args = parser.parse_args(argv)
    if args.smokes in ("all", []) or "all" in args.smokes:
        names = list(SMOKES)
    else:
        names = args.smokes

    os.makedirs(args.json_dir, exist_ok=True)
    failed = 0
    for name in names:
        print(f"== {name} ==", flush=True)
        failures = SMOKES[name](args.json_dir)
        if failures:
            failed += 1
            for failure in failures:
                print(f"FAIL [{name}] {failure}", file=sys.stderr)
        else:
            print(f"ok [{name}]")
    if failed:
        print(f"{failed}/{len(names)} smokes failed", file=sys.stderr)
        return 1
    print(f"all {len(names)} smokes passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
