"""Helpers shared by the figure benches."""

from __future__ import annotations


def emit(result) -> None:
    """Print a figure's series table (visible with ``pytest -s`` and in the
    benchmark run logs)."""
    print()
    print(result.to_text())


def series_mean(result, name: str) -> float:
    values = result.series[name]
    return sum(values) / len(values)
