"""Shared fixtures for the figure-regeneration benches.

The performance figures (8-12) share one session-scoped
:class:`ExperimentRunner`, so simulations run once and are reused across
benches — exactly how the paper's figures share the same runs.

Fidelity is environment-controlled (see ``RunnerSettings.from_env``):

* quick (default):        REPRO_INSTR=40000, REPRO_MAPS=6
* paper-scale statistics: REPRO_INSTR=200000 REPRO_MAPS=50
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner, RunnerSettings


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(RunnerSettings.from_env())
