"""Shared fixtures for the figure-regeneration benches.

The performance figures (8-12) share one session-scoped
:class:`ExperimentRunner`, so simulations run once and are reused across
benches — exactly how the paper's figures share the same runs.  Point
``REPRO_STORE`` at a campaign directory and the runner reads/writes a
persistent :class:`~repro.store.DiskStore` instead, so
repeated bench sessions (and the CLI, and the figures) skip every
simulation already on disk.

Fidelity is environment-controlled (see ``RunnerSettings.from_env``):

* quick (default):        REPRO_INSTR=40000, REPRO_MAPS=6
* paper-scale statistics: REPRO_INSTR=200000 REPRO_MAPS=50

``REPRO_TRACE_CACHE`` applies here too: the runner's TraceProvider loads
cached benchmark traces instead of regenerating them each session.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.store import open_store


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    store = open_store(os.environ.get("REPRO_STORE"))
    return ExperimentRunner(RunnerSettings.from_env(), store=store)
