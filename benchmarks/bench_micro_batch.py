"""Lane-batching microbenchmark: KIPS-per-lane at 1 / 8 / 50 lanes.

Measures the lane-batched campaign engine
(:meth:`OutOfOrderPipeline.run_batch`) against the sequential fused path
on one fault-dependent campaign point: the same trace simulated over
``--maps`` fault-map pairs, dispatched in batches of 1 (the legacy
per-map path), 8, and all-50 lanes.  Reported per lane width:

* ``kips``    — aggregate simulated instructions per second across lanes;
* ``seconds`` — wall-clock for the whole point;
* ``speedup`` — vs the sequential (width-1) dispatch.

Every batched result is checked for **bit-identity** against the
sequential runs; a divergence exits non-zero (that is the CI failure
condition — timing never is).

Usage::

    PYTHONPATH=src python benchmarks/bench_micro_batch.py
    PYTHONPATH=src python benchmarks/bench_micro_batch.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cpu.pipeline import OutOfOrderPipeline
from repro.experiments.configs import LV_BLOCK, LV_BLOCK_V6, RunConfig
from repro.experiments.runner import ExperimentRunner, RunnerSettings

#: Fault-dependent configs benchmarked: the plain block-disabling row and
#: the 6T victim-cache row (the paper's densest fault-dependent machinery).
BENCH_CONFIGS: tuple[RunConfig, ...] = (LV_BLOCK, LV_BLOCK_V6)


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="gzip", help="trace profile")
    parser.add_argument(
        "--instructions", type=int, default=40_000, help="measured region length"
    )
    parser.add_argument(
        "--warmup", type=int, default=10_000, help="warmup prefix length"
    )
    parser.add_argument(
        "--maps", type=int, default=50, help="fault-map pairs (paper: 50)"
    )
    parser.add_argument(
        "--lanes",
        default="1,8,50",
        help="comma list of lane widths to measure (each capped at --maps)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions (best kept)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny trace, fewer maps, one repetition (validates "
        "lane bit-identity; timing numbers are indicative only)",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write summary")
    return parser.parse_args(argv)


def _run_point(runner, config, trace, warmup, map_count, width):
    """One campaign point at the given lane width; returns (seconds, results)."""
    indices = list(range(map_count))
    results = []
    start = time.perf_counter()
    for begin in range(0, map_count, width):
        chunk = indices[begin : begin + width]
        pipelines = [runner.build_pipeline(config, m) for m in chunk]
        if width == 1:
            results.append(pipelines[0].run(trace, measure_from=warmup))
        else:
            results.extend(
                OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=warmup)
            )
    return time.perf_counter() - start, results


def run_bench(args) -> dict:
    if args.smoke:
        instructions, warmup, maps, repeats = 3_000, 1_000, 8, 1
        widths = [w for w in (1, 8) if w <= maps]
    else:
        instructions, warmup, maps = args.instructions, args.warmup, args.maps
        repeats = args.repeats
        widths = sorted(
            {min(int(w), maps) for w in args.lanes.split(",") if w.strip()}
        )

    settings = RunnerSettings(
        n_instructions=instructions,
        warmup_instructions=warmup,
        n_fault_maps=maps,
        benchmarks=(args.benchmark,),
    )
    runner = ExperimentRunner(settings)
    trace = runner.trace(args.benchmark)
    total = len(trace) * maps

    configs: dict[str, dict] = {}
    divergences = 0
    for config in BENCH_CONFIGS:
        runner.build_pipeline(config, 0).run(trace, measure_from=warmup)  # warm
        # Repetitions interleave the widths so per-repetition speedup
        # ratios are robust against machine-load drift; the reported
        # speedup is the median ratio, the KIPS the best run.
        times: dict[int, list[float]] = {w: [] for w in widths}
        outputs: dict[int, list] = {}
        for _ in range(repeats):
            for width in widths:
                elapsed, results = _run_point(
                    runner, config, trace, warmup, maps, width
                )
                times[width].append(elapsed)
                outputs[width] = results
        reference = outputs[widths[0]] if widths[0] == 1 else None
        rows: dict[str, dict] = {}
        for width in widths:
            identical = reference is None or outputs[width] == reference
            if not identical:
                divergences += 1
            best = min(times[width])
            if width == 1 or 1 not in times:
                speedup = 1.0 if width == 1 else None
            else:
                ratios = sorted(
                    seq / bat for seq, bat in zip(times[1], times[width])
                )
                speedup = round(ratios[len(ratios) // 2], 2)
            rows[str(width)] = {
                "kips": round(total / best / 1e3, 1),
                "seconds": round(best, 3),
                "speedup": speedup,
                "identical": identical,
            }
        configs[config.label] = rows
    top = str(max(widths))
    return {
        "benchmark": args.benchmark,
        "instructions": len(trace),
        "warmup": warmup,
        "maps": maps,
        "repeats": repeats,
        "smoke": bool(args.smoke),
        "lanes": widths,
        "configs": configs,
        "speedup_full_batch": configs[BENCH_CONFIGS[0].label][top]["speedup"],
        "divergences": divergences,
    }


def main(argv=None) -> int:
    args = _parse_args(argv)
    summary = run_bench(args)

    print(
        f"# KIPS per lane width — {summary['benchmark']}, "
        f"{summary['instructions']} instructions x {summary['maps']} maps"
    )
    for label, rows in summary["configs"].items():
        print(f"{label}:")
        for width, row in rows.items():
            ok = "yes" if row["identical"] else "DIVERGED"
            speed = f"{row['speedup']:.2f}x" if row["speedup"] else "  ref"
            print(
                f"  lanes={width:>3}  {row['kips']:>9.1f} KIPS"
                f"  {row['seconds']:>7.3f}s  {speed:>7}  ok={ok}"
            )
    print(f"full-batch speedup: {summary['speedup_full_batch']}x")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if summary["divergences"]:
        print(
            f"ERROR: {summary['divergences']} lane width(s) diverged from the "
            "sequential fused engine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
