"""Lane-batching microbenchmark: KIPS per lane width and the break-even.

Measures the lane-batched campaign engine
(:meth:`OutOfOrderPipeline.run_batch`) against the sequential fused path
on one fault-dependent campaign point: the same trace simulated over
``--maps`` fault-map pairs, dispatched in batches of 1 (the legacy
per-map path) and each requested width.  Reported per lane width:

* ``kips``    — aggregate simulated instructions per second across lanes;
* ``seconds`` — wall-clock for the whole point;
* ``speedup`` — vs the sequential (width-1) dispatch.

Per config the bench also reports ``break_even_lanes`` — the
interpolated lane count where a batched pass first matches sequential
wall-clock (with the compiled lane kernel this sits near 3; the
``MIN_BATCH_LANES`` default in ``repro.campaign.session`` cites it) —
and a ``hetero`` section demonstrating that a ``--maps 2`` campaign
over mixed victim sizings (0/8/16 entries) pads to one slot axis and
merges into a *single* vectorised pass group.

Every batched result is checked for **bit-identity** against the
sequential runs; a divergence exits non-zero (that is the CI failure
condition — timing never is).

Usage::

    PYTHONPATH=src python benchmarks/bench_micro_batch.py
    PYTHONPATH=src python benchmarks/bench_micro_batch.py --no-kernel
    PYTHONPATH=src python benchmarks/bench_micro_batch.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.cpu.pipeline import OutOfOrderPipeline
from repro.experiments.configs import (
    LV_BLOCK,
    LV_BLOCK_V6,
    LV_BLOCK_V10,
    RunConfig,
)
from repro.experiments.runner import ExperimentRunner, RunnerSettings

#: Fault-dependent configs benchmarked: the plain block-disabling row and
#: the 6T victim-cache row (the paper's densest fault-dependent machinery).
BENCH_CONFIGS: tuple[RunConfig, ...] = (LV_BLOCK, LV_BLOCK_V6)


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="gzip", help="trace profile")
    parser.add_argument(
        "--instructions", type=int, default=40_000, help="measured region length"
    )
    parser.add_argument(
        "--warmup", type=int, default=10_000, help="warmup prefix length"
    )
    parser.add_argument(
        "--maps", type=int, default=50, help="fault-map pairs (paper: 50)"
    )
    parser.add_argument(
        "--lanes",
        default="1,2,4,8,50",
        help="comma list of lane widths to measure (each capped at --maps)",
    )
    parser.add_argument(
        "--no-kernel",
        action="store_true",
        help="disable the compiled lane kernel (REPRO_NO_CKERNEL=1) to "
        "measure the pure-NumPy fallback's crossover",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions (best kept)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny trace, fewer maps, one repetition (validates "
        "lane bit-identity; timing numbers are indicative only)",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write summary")
    return parser.parse_args(argv)


def _run_point(runner, config, trace, warmup, map_count, width):
    """One campaign point at the given lane width; returns (seconds, results)."""
    indices = list(range(map_count))
    results = []
    start = time.perf_counter()
    for begin in range(0, map_count, width):
        chunk = indices[begin : begin + width]
        pipelines = [runner.build_pipeline(config, m) for m in chunk]
        if width == 1:
            results.append(pipelines[0].run(trace, measure_from=warmup))
        else:
            results.extend(
                OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=warmup)
            )
    return time.perf_counter() - start, results


def _break_even(widths, rows) -> "float | None":
    """The interpolated lane count where batched speedup crosses 1.0
    (``None`` when no measured width reaches it)."""
    prev_w, prev_s = None, None
    for width in widths:
        speedup = rows[str(width)]["speedup"]
        if width == 1 or speedup is None:
            continue
        if speedup >= 1.0:
            if prev_s is None or prev_s >= 1.0:
                return float(width)
            # linear interpolation in (width, speedup) between samples
            frac = (1.0 - prev_s) / (speedup - prev_s)
            return round(prev_w + frac * (width - prev_w), 1)
        prev_w, prev_s = width, speedup
    return None


def _run_hetero(args, instructions, warmup) -> dict:
    """A --maps 2 campaign over mixed victim sizings (0/8/16 entries):
    the padded slot axis must merge all six lanes into ONE vectorised
    pass group, bit-identical to the six sequential runs."""
    from repro.campaign.session import Session
    from repro.campaign.spec import CampaignSpec

    configs = (LV_BLOCK, LV_BLOCK_V6, LV_BLOCK_V10)
    settings = RunnerSettings(
        n_instructions=instructions,
        warmup_instructions=warmup,
        n_fault_maps=2,
        benchmarks=(args.benchmark,),
    )
    sequential = ExperimentRunner(settings, lanes=1, mega_batch=False)
    reference = {
        (config.label, m): sequential.run(args.benchmark, config, m)
        for config in configs
        for m in range(2)
    }
    with Session(settings) as session:
        spec = CampaignSpec.from_settings(settings, configs)
        plan = session.plan(spec)
        start = time.perf_counter()
        for group in plan.groups:
            session.execute_group(group)
        elapsed = time.perf_counter() - start
        identical = all(
            session.store.get(session.task_key(args.benchmark, config, m))
            == reference[(config.label, m)]
            for config in configs
            for m in range(2)
        )
        return {
            "configs": [c.label for c in configs],
            "maps": 2,
            "groups": len(plan.groups),
            "merged": all(g.merged for g in plan.groups),
            "passes": session.schedule_passes,
            "predicted_passes": plan.predicted_passes,
            "seconds": round(elapsed, 3),
            "identical": identical,
        }


def run_bench(args) -> dict:
    if args.no_kernel:
        os.environ["REPRO_NO_CKERNEL"] = "1"
    from repro.cpu import lane_kernel

    if args.smoke:
        instructions, warmup, maps, repeats = 3_000, 1_000, 8, 1
        widths = [w for w in (1, 4, 8) if w <= maps]
    else:
        instructions, warmup, maps = args.instructions, args.warmup, args.maps
        repeats = args.repeats
        widths = sorted(
            {min(int(w), maps) for w in args.lanes.split(",") if w.strip()}
        )

    settings = RunnerSettings(
        n_instructions=instructions,
        warmup_instructions=warmup,
        n_fault_maps=maps,
        benchmarks=(args.benchmark,),
    )
    runner = ExperimentRunner(settings)
    trace = runner.trace(args.benchmark)
    total = len(trace) * maps

    configs: dict[str, dict] = {}
    divergences = 0
    for config in BENCH_CONFIGS:
        runner.build_pipeline(config, 0).run(trace, measure_from=warmup)  # warm
        # Repetitions interleave the widths so per-repetition speedup
        # ratios are robust against machine-load drift; the reported
        # speedup is the median ratio, the KIPS the best run.
        times: dict[int, list[float]] = {w: [] for w in widths}
        outputs: dict[int, list] = {}
        for _ in range(repeats):
            for width in widths:
                elapsed, results = _run_point(
                    runner, config, trace, warmup, maps, width
                )
                times[width].append(elapsed)
                outputs[width] = results
        reference = outputs[widths[0]] if widths[0] == 1 else None
        rows: dict[str, dict] = {}
        for width in widths:
            identical = reference is None or outputs[width] == reference
            if not identical:
                divergences += 1
            best = min(times[width])
            if width == 1 or 1 not in times:
                speedup = 1.0 if width == 1 else None
            else:
                ratios = sorted(
                    seq / bat for seq, bat in zip(times[1], times[width])
                )
                speedup = round(ratios[len(ratios) // 2], 2)
            rows[str(width)] = {
                "kips": round(total / best / 1e3, 1),
                "seconds": round(best, 3),
                "speedup": speedup,
                "identical": identical,
            }
        rows["break_even_lanes"] = _break_even(widths, rows)
        configs[config.label] = rows
    hetero = _run_hetero(args, instructions, warmup)
    if not hetero["identical"]:
        divergences += 1
    top = str(max(widths))
    return {
        "benchmark": args.benchmark,
        "instructions": len(trace),
        "warmup": warmup,
        "maps": maps,
        "repeats": repeats,
        "smoke": bool(args.smoke),
        "kernel_active": lane_kernel.load() is not None,
        "lanes": widths,
        "configs": configs,
        "speedup_full_batch": configs[BENCH_CONFIGS[0].label][top]["speedup"],
        "break_even_lanes": configs[BENCH_CONFIGS[0].label]["break_even_lanes"],
        "hetero": hetero,
        "divergences": divergences,
    }


def main(argv=None) -> int:
    args = _parse_args(argv)
    summary = run_bench(args)

    print(
        f"# KIPS per lane width — {summary['benchmark']}, "
        f"{summary['instructions']} instructions x {summary['maps']} maps"
    )
    print(f"compiled lane kernel: {'on' if summary['kernel_active'] else 'off'}")
    for label, rows in summary["configs"].items():
        print(f"{label}:")
        for width, row in rows.items():
            if width == "break_even_lanes":
                continue
            ok = "yes" if row["identical"] else "DIVERGED"
            speed = f"{row['speedup']:.2f}x" if row["speedup"] else "  ref"
            print(
                f"  lanes={width:>3}  {row['kips']:>9.1f} KIPS"
                f"  {row['seconds']:>7.3f}s  {speed:>7}  ok={ok}"
            )
        be = rows["break_even_lanes"]
        print(f"  break-even: {be if be is not None else '> max measured'} lanes")
    print(f"full-batch speedup: {summary['speedup_full_batch']}x")
    hetero = summary["hetero"]
    print(
        f"hetero victim merge (--maps {hetero['maps']}, "
        f"{len(hetero['configs'])} configs): groups={hetero['groups']} "
        f"merged={hetero['merged']} passes={hetero['passes']} "
        f"(predicted {hetero['predicted_passes']}) "
        f"ok={'yes' if hetero['identical'] else 'DIVERGED'}"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if summary["divergences"]:
        print(
            f"ERROR: {summary['divergences']} lane width(s) diverged from the "
            "sequential fused engine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
