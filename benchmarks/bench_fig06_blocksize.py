"""Fig. 6: block-disabling capacity vs pfail for 32B/64B/128B blocks."""

from _bench_utils import emit

from repro.experiments.figures import fig6_data


def test_fig6_blocksize_capacity(benchmark):
    result = benchmark(fig6_data)
    emit(result)
    c32 = result.series["32B"]
    c64 = result.series["64B"]
    c128 = result.series["128B"]
    # Paper's ordering: smaller blocks always retain more capacity.
    for i in range(1, len(c32)):
        assert c32[i] > c64[i] > c128[i]
