"""Fig. 8: below-Vcc-min performance normalized to the baseline without a
victim cache — the paper's headline comparison.

Paper numbers: word-disabling loses 11.2% on average, block-disabling 8.3%,
block-disabling + 16-entry 10T victim cache 5.3% (a 6.6% average
improvement over word-disabling, up to 29% on crafty).
"""

from _bench_utils import emit, series_mean

from repro.experiments.figures import fig8_data


def test_fig8_low_voltage_normalized(benchmark, runner):
    result = benchmark.pedantic(fig8_data, args=(runner,), rounds=1, iterations=1)
    emit(result)

    word = series_mean(result, "word disabling")
    block = series_mean(result, "block disabling avg")
    block_v = series_mean(result, "block disabling avg+V$ 10T")

    # The paper's ordering must hold: word < block < block+V$.
    assert word < block < block_v
    # Magnitudes in the paper's neighbourhood (generous bands: different
    # simulator, reduced trace scale).
    assert 0.03 < 1 - word < 0.25
    assert 0.02 < 1 - block < 0.20
    assert 0.01 < 1 - block_v < 0.15

    benchmark.extra_info["mean_penalty"] = {
        "word": round(1 - word, 4),
        "block": round(1 - block, 4),
        "block+V$": round(1 - block_v, 4),
        "paper": {"word": 0.112, "block": 0.083, "block+V$": 0.053},
    }
