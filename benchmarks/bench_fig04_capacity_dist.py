"""Fig. 4: probability distribution of block-disabled cache capacity at
pfail = 0.001 (Eq. 3)."""

import pytest
from _bench_utils import emit

from repro.analysis.capacity_dist import capacity_distribution_for_geometry
from repro.experiments.figures import fig4_data
from repro.faults import PAPER_L1_GEOMETRY


def test_fig4_capacity_distribution(benchmark):
    result = benchmark(fig4_data)
    emit(result)
    dist = capacity_distribution_for_geometry(PAPER_L1_GEOMETRY, 0.001)
    # Paper's reading of the figure: mean 58%, sigma ~2%, P[>50%] ~99.9%.
    assert dist.mean_capacity == pytest.approx(0.58, abs=0.01)
    assert dist.std_capacity == pytest.approx(0.02, abs=0.005)
    assert dist.prob_capacity_above(0.5) > 0.999
    assert sum(result.series["probability"]) == pytest.approx(1.0, abs=1e-6)
