"""Ablation (paper future work, Sec. VIII): block-disabling the L2.

The L2 loses the same ~42% of blocks at pfail = 0.001, but only L1 misses
see it — the performance cost should be second-order compared to the L1
loss.
"""

from _bench_utils import emit, series_mean

from repro.experiments.ablation import l2_low_voltage_study


def test_abl_l2_block_disable(benchmark):
    result = benchmark.pedantic(l2_low_voltage_study, rounds=1, iterations=1)
    emit(result)
    l1_only = series_mean(result, "L1 only")
    l1_l2 = series_mean(result, "L1+L2")
    assert l1_l2 <= l1_only + 1e-9
    # Second-order: disabling the L2 costs less than the L1 did.
    assert (l1_only - l1_l2) < (1.0 - l1_only) + 0.05
    benchmark.extra_info["means"] = {
        "L1_only": round(l1_only, 4),
        "L1_plus_L2": round(l1_l2, 4),
    }
