"""Workload characterization (the suite's Table-II-style companion).

Baseline high-voltage statistics for every synthetic SPEC CPU 2000
benchmark, plus the behaviour-space check: the suite must span
cache-friendly, capacity-bound, code-heavy, and branchy programs for the
paper's comparisons to carry meaning.
"""

from _bench_utils import emit

from repro.experiments.characterize import (
    behaviour_space_check,
    characterization_table,
)


def test_workload_characterization(benchmark):
    result = benchmark.pedantic(characterization_table, rounds=1, iterations=1)
    emit(result)
    flags = behaviour_space_check(result)
    missing = [label for label, present in flags.items() if not present]
    assert not missing, f"suite does not span: {missing}"
    benchmark.extra_info["behaviour_space"] = flags
