"""Micro-benchmarks of the simulation substrates themselves.

These are classic pytest-benchmark timings (multiple rounds) of the four
hot components: fault-map generation, the behavioural cache, the trace
generator, and the pipeline timing model.  They bound the cost of scaling
experiments toward the paper's full methodology.
"""

import numpy as np

from repro.cache.hierarchy import LatencyConfig, MemoryHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.cpu.config import PAPER_PIPELINE
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.faults import PAPER_L1_GEOMETRY, PAPER_L2_GEOMETRY, FaultMap
from repro.workloads.generator import generate_trace


def test_fault_map_generation(benchmark):
    """Draw one paper-geometry fault map (512 x 537 cells)."""
    rng = np.random.default_rng(0)
    fmap = benchmark(FaultMap.generate, PAPER_L1_GEOMETRY, 0.001, rng)
    assert fmap.faults.shape == (512, 537)


def test_fault_map_block_analysis(benchmark):
    """Block/word-level queries on a generated map."""
    fmap = FaultMap.generate(PAPER_L1_GEOMETRY, 0.001, seed=1)

    def analyse():
        return (
            fmap.faulty_block_mask().sum(),
            fmap.faulty_words_per_block().sum(),
            fmap.usable_ways_per_set().min(),
        )

    faulty_blocks, faulty_words, min_ways = benchmark(analyse)
    assert faulty_blocks > 0


def test_cache_access_throughput(benchmark):
    """10k mixed lookups+fills on a 32KB 8-way cache."""
    rng = np.random.default_rng(2)
    addresses = [int(a) for a in rng.integers(0, 4096, size=10_000)]

    def run():
        cache = SetAssociativeCache(PAPER_L1_GEOMETRY)
        hits = 0
        for addr in addresses:
            if cache.lookup(addr):
                hits += 1
            else:
                cache.fill(addr)
        return hits

    hits = benchmark(run)
    assert hits > 0


def test_trace_generation_throughput(benchmark):
    """Generate a 20k-instruction crafty trace."""
    trace = benchmark(generate_trace, "crafty", 20_000, 7)
    assert len(trace) == 20_000


def test_pipeline_throughput(benchmark):
    """Simulate 20k instructions through the full hierarchy."""
    trace = generate_trace("crafty", 20_000, seed=7)

    def run():
        hierarchy = MemoryHierarchy(
            SetAssociativeCache(PAPER_L1_GEOMETRY, name="l1i"),
            SetAssociativeCache(PAPER_L1_GEOMETRY, name="l1d"),
            PAPER_L2_GEOMETRY,
            LatencyConfig(),
            victim_entries_i=16,
            victim_entries_d=16,
        )
        return OutOfOrderPipeline(PAPER_PIPELINE, hierarchy).run(trace)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.cycles > 0
