"""Fig. 11: high-voltage performance normalized to the baseline without a
victim cache.

Paper conclusion: block-disabling adds *no* overhead at high voltage (it is
the baseline); word-disabling degrades everywhere because its alignment
network costs one cycle of cache latency even above Vcc-min.
"""

import pytest
from _bench_utils import emit, series_mean

from repro.experiments.figures import fig11_data


def test_fig11_high_voltage(benchmark, runner):
    result = benchmark.pedantic(fig11_data, args=(runner,), rounds=1, iterations=1)
    emit(result)

    # Block-disabling == baseline, exactly, benchmark by benchmark.
    for value in result.series["block disabling"]:
        assert value == pytest.approx(1.0, abs=1e-9)
    # Word-disabling strictly below baseline on every benchmark.
    for value in result.series["word disabling"]:
        assert value < 1.0

    benchmark.extra_info["word_mean"] = round(series_mean(result, "word disabling"), 4)
