"""Fig. 9: below-Vcc-min performance with a 10T victim cache everywhere,
normalized to the baseline + victim cache.

Paper numbers: word-disabling degradation 10%, block-disabling 5.8%; the
block-disabling minimum is consistently at or above word-disabling.
"""

from _bench_utils import emit, series_mean

from repro.experiments.figures import fig9_data


def test_fig9_low_voltage_victim_baseline(benchmark, runner):
    result = benchmark.pedantic(fig9_data, args=(runner,), rounds=1, iterations=1)
    emit(result)

    word = series_mean(result, "word disabling")
    block = series_mean(result, "block disabling avg")
    block_min = series_mean(result, "block disabling min")

    assert block > word  # block-disabling wins on average
    assert 1 - word < 0.25
    assert 1 - block < 0.15
    # Averages close to minima => the paper's 'more predictable
    # performance' claim.
    assert block - block_min < 0.06

    benchmark.extra_info["mean_penalty"] = {
        "word": round(1 - word, 4),
        "block": round(1 - block, 4),
        "paper": {"word": 0.10, "block": 0.058},
    }
