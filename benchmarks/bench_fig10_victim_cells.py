"""Fig. 10: 16-entry victim cache built from 10T vs 6T cells at low voltage
(the 6T option keeps only 8 usable entries, Section V).

Paper conclusion: a few benchmarks dip with the 6T victim cache, but both
average and minimum stay better than word-disabling.
"""

from _bench_utils import emit, series_mean

from repro.experiments.figures import fig10_data


def test_fig10_victim_cell_choice(benchmark, runner):
    result = benchmark.pedantic(fig10_data, args=(runner,), rounds=1, iterations=1)
    emit(result)

    word = series_mean(result, "word disabling")
    v10 = series_mean(result, "block disabling avg+V$ 10T")
    v6 = series_mean(result, "block disabling avg+V$ 6T")

    # 10T (16 usable entries) >= 6T (8 usable entries) > word-disabling.
    assert v10 >= v6 - 1e-6
    assert v6 > word

    benchmark.extra_info["means"] = {
        "word": round(word, 4),
        "block+V$10T": round(v10, 4),
        "block+V$6T": round(v6, 4),
    }
