"""End-to-end KIPS microbenchmark: the canonical perf metric for the core.

Measures simulated-instructions-per-second per scheme for one *campaign
point* — configured-hierarchy construction plus a full pipeline run over a
warm trace, exactly the unit of work a Monte-Carlo campaign repeats
thousands of times — on both execution engines:

* ``fused``  — the flat-state engine + schedule-driven loop (the default);
* ``object`` — the ``MemoryHierarchy.access_*`` method chain, kept in-tree
  as the verification baseline (the pre-PR execution model).

A ``schedule_compile`` section additionally times pass-1
``FrontEndSchedule`` compilation both ways — the vectorised
array-at-a-time builder against the per-instruction reference replay —
and verifies the outputs are field-identical *and* serialise to
bit-identical ``.npz`` cache payloads.  Compile KIPS scale with trace
length; drive ``--instructions 1000000`` for campaign-scale numbers.

Every measured pair is also checked for **bit-identical** ``SimResult``s;
a divergence exits non-zero (that is the CI failure condition — timing
never is).

Usage::

    PYTHONPATH=src python benchmarks/bench_micro_pipeline.py
    PYTHONPATH=src python benchmarks/bench_micro_pipeline.py --smoke --json out.json

Point ``REPRO_TRACE_CACHE`` at a directory to exercise trace-cache loads
instead of generation (the campaign-worker reality).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.configs import (
    HV_BASELINE,
    LV_BASELINE,
    LV_BASELINE_V,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
    RunConfig,
)
from repro.experiments.runner import ExperimentRunner, RunnerSettings

#: Scheme set benchmarked: the headline Table III rows.  The LV baseline is
#: the acceptance config (its speedup is reported as ``baseline_speedup``).
BENCH_CONFIGS: tuple[RunConfig, ...] = (
    LV_BASELINE,
    LV_BASELINE_V,
    LV_WORD,
    LV_BLOCK,
    LV_BLOCK_V10,
    HV_BASELINE,
)


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="gzip", help="trace profile")
    parser.add_argument(
        "--instructions", type=int, default=40_000, help="measured region length"
    )
    parser.add_argument(
        "--warmup", type=int, default=10_000, help="warmup prefix length"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny trace, one repetition (validates bit-identity; "
        "timing numbers are indicative only)",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="write summary")
    return parser.parse_args(argv)


def _bench_schedule_compile(runner, trace, warmup, repeats) -> dict:
    """Pass-1 schedule compilation: vectorised builder vs the
    per-instruction reference replay, plus ``.npz`` payload identity."""
    from io import BytesIO

    import numpy as np

    from repro.cpu import frontend

    config = runner.pipeline_config
    offset_bits = runner.build_pipeline(
        BENCH_CONFIGS[0], 0 if BENCH_CONFIGS[0].needs_fault_map else None
    ).hierarchy.l1i.geometry.offset_bits

    timings = {"reference": float("inf"), "vectorised": float("inf")}
    outputs = {}
    builders = {
        "reference": frontend._build_schedule_reference,
        "vectorised": frontend._build_schedule,
    }
    for name, build in builders.items():
        for rep in range(repeats + 1):  # +1 untimed warm-up rep
            t0 = time.perf_counter()
            schedule = build(trace, config, offset_bits, warmup)
            elapsed = time.perf_counter() - t0
            if rep > 0 or repeats == 1:
                timings[name] = min(timings[name], elapsed)
        outputs[name] = schedule
    identical = outputs["vectorised"] == outputs["reference"]

    def npz_members(schedule):
        buffer = BytesIO()
        frontend.save_schedule(schedule, buffer)
        buffer.seek(0)
        with np.load(buffer) as data:
            return {k: data[k].tobytes() for k in data.files}

    npz_identical = npz_members(outputs["vectorised"]) == npz_members(
        outputs["reference"]
    )
    total = len(trace)
    return {
        "kips_reference": round(total / timings["reference"] / 1e3, 1),
        "kips_vectorised": round(total / timings["vectorised"] / 1e3, 1),
        "speedup": round(timings["reference"] / timings["vectorised"], 2),
        "identical": identical,
        "npz_identical": npz_identical,
    }


def run_bench(args) -> dict:
    if args.smoke:
        instructions, warmup, repeats = 4_000, 1_000, 1
    else:
        instructions, warmup, repeats = args.instructions, args.warmup, args.repeats

    settings = RunnerSettings(
        n_instructions=instructions,
        warmup_instructions=warmup,
        n_fault_maps=1,
        benchmarks=(args.benchmark,),
    )
    runner = ExperimentRunner(settings)
    trace = runner.trace(args.benchmark)  # generated once or trace-cache hit
    total = len(trace)

    schemes: dict[str, dict] = {}
    divergences = 0
    for config in BENCH_CONFIGS:
        map_index = 0 if config.needs_fault_map else None
        timings: dict[str, float] = {}
        results: dict[str, object] = {}
        for engine in ("object", "fused"):
            best = float("inf")
            result = None
            for rep in range(repeats + 1):  # +1 untimed warm-up rep
                pipeline = runner.build_pipeline(config, map_index, engine=engine)
                t0 = time.perf_counter()
                result = pipeline.run(trace, measure_from=warmup)
                elapsed = time.perf_counter() - t0
                if rep > 0 or repeats == 1:
                    best = min(best, elapsed)
            timings[engine] = best
            results[engine] = result
        identical = results["object"] == results["fused"]
        if not identical:
            divergences += 1
        key = f"{config.voltage.value}/{config.label}"
        schemes[key] = {
            "kips_object": round(total / timings["object"] / 1e3, 1),
            "kips_fused": round(total / timings["fused"] / 1e3, 1),
            "speedup": round(timings["object"] / timings["fused"], 2),
            "cycles": results["fused"].cycles,
            "identical": identical,
        }

    compile_row = _bench_schedule_compile(runner, trace, warmup, repeats)
    if not (compile_row["identical"] and compile_row["npz_identical"]):
        divergences += 1

    baseline_key = f"{LV_BASELINE.voltage.value}/{LV_BASELINE.label}"
    return {
        "benchmark": args.benchmark,
        "instructions": total,
        "warmup": warmup,
        "repeats": repeats,
        "smoke": bool(args.smoke),
        "traces_generated": runner.traces.generated,
        "traces_loaded": runner.traces.loaded,
        "schemes": schemes,
        "schedule_compile": compile_row,
        "baseline_speedup": schemes[baseline_key]["speedup"],
        "divergences": divergences,
    }


def main(argv=None) -> int:
    args = _parse_args(argv)
    summary = run_bench(args)

    width = max(len(k) for k in summary["schemes"])
    print(f"# KIPS per scheme — {summary['benchmark']}, "
          f"{summary['instructions']} instructions (warmup {summary['warmup']})")
    print(f"{'scheme':{width}}  {'object':>9}  {'fused':>9}  {'speedup':>7}  ok")
    for key, row in summary["schemes"].items():
        print(
            f"{key:{width}}  {row['kips_object']:>9.1f}  {row['kips_fused']:>9.1f}"
            f"  {row['speedup']:>6.2f}x  {'yes' if row['identical'] else 'DIVERGED'}"
        )
    print(f"baseline speedup: {summary['baseline_speedup']:.2f}x")
    comp = summary["schedule_compile"]
    ok = "yes" if comp["identical"] and comp["npz_identical"] else "DIVERGED"
    print(
        f"schedule compile: ref {comp['kips_reference']:.1f} KIPS -> "
        f"vec {comp['kips_vectorised']:.1f} KIPS "
        f"({comp['speedup']:.2f}x, npz-identical={ok})"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if summary["divergences"]:
        print(
            f"ERROR: {summary['divergences']} scheme(s) diverged between engines",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
