"""Fig. 1: voltage scaling vs power and performance (1a conventional DVS,
1b with sub-Vcc-min operation)."""

from _bench_utils import emit

from repro.experiments.figures import fig1_data


def test_fig1_voltage_scaling(benchmark):
    result = benchmark(fig1_data)
    emit(result)
    # The low-voltage zone exists: performance under a disabling scheme
    # drops below the frequency-tracking line somewhere below Vcc-min.
    conventional = result.series["perf_conventional(1a)"]
    below = result.series["perf_below_vccmin(1b)"]
    assert any(b < c - 1e-6 for b, c in zip(below, conventional))
    benchmark.extra_info["vccmin_note"] = result.notes
