"""Fig. 3: mean fraction of faulty blocks vs pfail (Eq. 2)."""

import pytest
from _bench_utils import emit

from repro.experiments.figures import fig3_data


def test_fig3_faulty_block_fraction(benchmark):
    result = benchmark(fig3_data)
    emit(result)
    faulty = dict(zip(result.index, result.series["faulty_blocks"]))
    # Paper anchor: ~41.6% of blocks faulty at pfail = 0.001.
    at_0001 = faulty[min(result.index, key=lambda p: abs(p - 0.001))]
    assert at_0001 == pytest.approx(0.416, abs=0.02)
    # Concavity: the marginal fraction of *newly* faulty blocks shrinks as
    # pfail grows — the paper's 'faults increasingly occur in already
    # faulty blocks'.
    series = result.series["faulty_blocks"]
    first_step = series[1] - series[0]
    last_step = series[-1] - series[-2]
    assert last_step < first_step
