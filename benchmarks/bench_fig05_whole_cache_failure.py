"""Fig. 5: probability of whole-cache failure for word-disabling vs pfail
(Eqs. 4-5)."""

import pytest
from _bench_utils import emit

from repro.analysis.word_disable import whole_cache_failure_probability
from repro.experiments.figures import fig5_data


def test_fig5_whole_cache_failure(benchmark):
    result = benchmark(fig5_data)
    emit(result)
    # Paper anchors: ~1/1000 at pfail 0.001, ~1/100 at pfail 0.0015.
    assert whole_cache_failure_probability(0.001) == pytest.approx(1.6e-3, rel=0.5)
    assert whole_cache_failure_probability(0.0015) == pytest.approx(1.1e-2, rel=0.5)
    series = result.series["whole_cache_failure"]
    assert all(b >= a for a, b in zip(series, series[1:]))
