"""Property-based tests for the extension analyses (granularity, bit-fix,
energy model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bitfix import (
    block_unrepairable_probability,
    pair_fault_probability,
    whole_cache_failure_probability,
)
from repro.analysis.granularity import (
    DisableGranularity,
    cells_per_unit,
    expected_capacity,
)
from repro.faults import CacheGeometry
from repro.power.dvs import DVSModel
from repro.power.energy import EnergyModel

pfails = st.floats(min_value=0.0, max_value=0.05, allow_nan=False)

GEOMETRY = CacheGeometry(size_bytes=8 * 1024, ways=8, block_bytes=64)


class TestGranularityProperties:
    @given(p=pfails)
    @settings(max_examples=40, deadline=None)
    def test_capacity_ordering_invariant(self, p):
        """Finer granularity never keeps less capacity, at any pfail."""
        order = [
            DisableGranularity.WORD,
            DisableGranularity.BLOCK,
            DisableGranularity.SET,
            DisableGranularity.WAY,
            DisableGranularity.CACHE,
        ]
        capacities = [expected_capacity(GEOMETRY, g, p) for g in order]
        for finer, coarser in zip(capacities, capacities[1:]):
            assert finer >= coarser - 1e-12

    @given(p=pfails)
    @settings(max_examples=40, deadline=None)
    def test_capacity_is_probability(self, p):
        for g in DisableGranularity:
            assert 0.0 <= expected_capacity(GEOMETRY, g, p) <= 1.0

    @given(
        p1=pfails,
        p2=pfails,
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_pfail(self, p1, p2):
        lo, hi = sorted((p1, p2))
        for g in DisableGranularity:
            assert (
                expected_capacity(GEOMETRY, g, hi)
                <= expected_capacity(GEOMETRY, g, lo) + 1e-12
            )

    def test_cells_partition_cache(self):
        """Set and way units tile the cache exactly."""
        set_cells = cells_per_unit(GEOMETRY, DisableGranularity.SET)
        way_cells = cells_per_unit(GEOMETRY, DisableGranularity.WAY)
        assert set_cells * GEOMETRY.num_sets == GEOMETRY.total_cells
        assert way_cells * GEOMETRY.ways == GEOMETRY.total_cells


class TestBitfixProperties:
    @given(p=pfails)
    @settings(max_examples=40, deadline=None)
    def test_probabilities_in_range(self, p):
        assert 0.0 <= pair_fault_probability(p) <= 1.0
        assert 0.0 <= block_unrepairable_probability(p) <= 1.0
        assert 0.0 <= whole_cache_failure_probability(p) <= 1.0

    @given(p=pfails, tol1=st.integers(0, 20), tol2=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_more_tolerance_helps(self, p, tol1, tol2):
        lo, hi = sorted((tol1, tol2))
        assert block_unrepairable_probability(
            p, pairs_tolerated=hi
        ) <= block_unrepairable_probability(p, pairs_tolerated=lo) + 1e-12

    @given(p=pfails)
    @settings(max_examples=40, deadline=None)
    def test_pair_dominates_cell(self, p):
        assert pair_fault_probability(p) >= p - 1e-12


class TestEnergyProperties:
    model = EnergyModel(dvs=DVSModel())

    @given(v=st.floats(min_value=0.45, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_power_positive_and_monotone_near(self, v):
        assert self.model.power(v) > 0
        assert self.model.power(v) <= self.model.power(1.0) + 1e-12

    @given(
        v1=st.floats(min_value=0.45, max_value=1.0),
        v2=st.floats(min_value=0.45, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_power_monotone_in_voltage(self, v1, v2):
        lo, hi = sorted((v1, v2))
        assert self.model.power(lo) <= self.model.power(hi) + 1e-12
