"""Property: mega-batch scattering is partition-invariant.

However a campaign's work items are sliced into mega-batches — any
grouping, any order, any subset already sitting in the store as
"holes" — :meth:`ExperimentRunner.run_lane_group` must scatter back
results bit-identical to the sequential per-point path.  This is the
planner's core invariant: grouping is a pure performance decision and
can never change a simulated bit.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.configs import LV_BASELINE, LV_BLOCK, LV_INCREMENTAL
from repro.experiments.runner import ExperimentRunner, RunnerSettings

TINY = RunnerSettings(
    n_instructions=1_200,
    warmup_instructions=400,
    n_fault_maps=3,
    benchmarks=("gzip",),
)

#: Work items of a small multi-point campaign: a fault-free baseline that
#: shares a batch signature with the block-disabling maps, plus
#: incremental word-disabling lanes in a different latency class.
ITEMS = (
    (LV_BASELINE, None),
    *((LV_BLOCK, m) for m in range(TINY.n_fault_maps)),
    *((LV_INCREMENTAL, m) for m in range(TINY.n_fault_maps)),
)

#: Sequential per-point reference, computed once (hypothesis reruns the
#: test body many times; the reference never changes).
_REFERENCE: dict = {}


def _reference() -> dict:
    if not _REFERENCE:
        sequential = ExperimentRunner(TINY, lanes=1, mega_batch=False)
        for config, m in ITEMS:
            _REFERENCE[(config.label, m)] = sequential.run("gzip", config, m)
    return _REFERENCE


@st.composite
def partitions(draw):
    """A random ordered partition of ITEMS into mega-batches, plus the
    subset of items pre-seeded into the store (the dedup holes)."""
    order = draw(st.permutations(range(len(ITEMS))))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=len(ITEMS),
            max_size=len(ITEMS),
        )
    )
    groups: dict[int, list] = {}
    for index, label in zip(order, labels):
        groups.setdefault(label, []).append(ITEMS[index])
    holes = draw(st.sets(st.integers(min_value=0, max_value=len(ITEMS) - 1)))
    return list(groups.values()), [ITEMS[i] for i in sorted(holes)]


@given(partitions())
@settings(max_examples=12, deadline=None)
def test_any_partition_scatters_bit_identical(partition):
    groups, holes = partition
    reference = _reference()
    runner = ExperimentRunner(TINY)
    for config, m in holes:
        runner.store_result("gzip", config, m, reference[(config.label, m)])
    for group in groups:
        results = runner.run_lane_group("gzip", list(group))
        assert results == [
            reference[(config.label, m)] for config, m in group
        ]
    # Post-scatter, the store holds the full campaign, every point
    # bit-identical to the sequential path, holes untouched.
    for config, m in ITEMS:
        assert runner.cached("gzip", config, m) == reference[
            (config.label, m)
        ]
    assert runner.simulations_executed == len(ITEMS) - len(holes)
