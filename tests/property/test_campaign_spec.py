"""Property: CampaignSpec -> JSON -> CampaignSpec is the identity, and
equal specs resolve to equal store task keys.

The campaign layer treats specs as *values* that can travel — between
processes (pool workers), files (saved campaigns), and sessions — while
still naming exactly one set of simulations.  Hypothesis drives the
whole spec surface: arbitrary config subsets (including label-only
duplicates), benchmark subsets, and fidelity fields.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import CampaignSpec
from repro.experiments.configs import ALL_CONFIGS
from repro.workloads.spec2000 import ALL_BENCHMARKS

configs_strategy = st.lists(
    st.sampled_from(ALL_CONFIGS), min_size=1, max_size=4
).map(tuple)

benchmarks_strategy = st.lists(
    st.sampled_from(ALL_BENCHMARKS), min_size=1, max_size=3, unique=True
).map(tuple)

specs = st.builds(
    CampaignSpec,
    configs=configs_strategy,
    benchmarks=benchmarks_strategy,
    n_instructions=st.integers(min_value=1, max_value=10**7),
    n_fault_maps=st.integers(min_value=1, max_value=64),
    pfail=st.floats(
        min_value=0.0, max_value=0.01, allow_nan=False, allow_infinity=False
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    warmup_instructions=st.integers(min_value=0, max_value=10**6),
    figure=st.one_of(st.none(), st.sampled_from(["fig8", "fig9", "custom"])),
)


@settings(max_examples=60, deadline=None)
@given(spec=specs)
def test_json_round_trip_is_identity(spec):
    restored = CampaignSpec.from_json(spec.to_json())
    assert restored == spec
    assert hash(restored) == hash(spec)
    # dict round-trip too (what a saved campaign file stores)
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=30, deadline=None)
@given(spec=specs)
def test_equal_specs_produce_equal_task_keys(spec):
    twin = CampaignSpec.from_json(spec.to_json())
    assert twin.task_keys() == spec.task_keys()
    # and the settings bridge preserves the fidelity the keys hash
    assert twin.settings() == spec.settings()
