"""Property-based equivalence: fused/batched runs vs per-op sequential.

The lane-batched engine (and, where available, the compiled lane
kernel riding inside it) promises bit-identity with N sequential fused
runs on *any* trace, not just the generator's benchmark profiles.
Hypothesis drives randomly-structured traces — arbitrary class mixes,
register patterns, branch shapes, and memory streams — through both
paths across heterogeneous victim-cache lanes and asserts the results
are equal, cycles and statistics alike.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import NO_REGISTER, InstrClass
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.cpu.trace import Trace
from repro.experiments.configs import LV_BLOCK, LV_BLOCK_V6, LV_BLOCK_V10
from repro.experiments.runner import ExperimentRunner, RunnerSettings

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=3,
    benchmarks=("gzip",),
)

RUNNER = ExperimentRunner(SETTINGS)

#: (config, map_index) lanes mixing victim sizings (0/8/16 entries) so
#: every example also exercises the padded victim slot axis.
LANE_ITEMS = (
    (LV_BLOCK, 0),
    (LV_BLOCK_V6, 1),
    (LV_BLOCK_V10, 2),
)


def random_trace(seed: int, n: int) -> Trace:
    """A structurally-arbitrary committed-instruction trace: random
    class mix, dependence patterns, jumpy control flow, and a memory
    stream with a little locality (so hits and misses both occur)."""
    rng = random.Random(seed)
    trace = Trace(name=f"prop-{seed}")
    pc = 0x1000
    mem_bases = [rng.randrange(0, 1 << 18) << 6 for _ in range(4)]
    targets = [0x1000 + 4 * rng.randrange(0, 4 * n) for _ in range(8)]
    classes = list(InstrClass)
    for _ in range(n):
        cls = rng.choice(classes)
        mem_addr = -1
        taken = False
        if cls.is_memory:
            mem_addr = rng.choice(mem_bases) + 4 * rng.randrange(0, 256)
        src1 = rng.randrange(0, 64) if rng.random() < 0.8 else NO_REGISTER
        src2 = rng.randrange(0, 64) if rng.random() < 0.4 else NO_REGISTER
        dest = rng.randrange(0, 64) if rng.random() < 0.6 else NO_REGISTER
        if cls.is_control:
            taken = rng.random() < 0.6
        trace.append(pc, cls, mem_addr, src1, src2, dest, taken)
        pc = rng.choice(targets) if taken else pc + 4
    return trace


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=200, max_value=800),
    warm_frac=st.sampled_from([0.0, 0.3]),
)
@settings(max_examples=15, deadline=None)
def test_batched_matches_sequential_on_random_traces(seed, n, warm_frac):
    trace = random_trace(seed, n)
    measure_from = int(n * warm_frac)
    sequential = [
        RUNNER.build_pipeline(config, m).run(trace, measure_from=measure_from)
        for config, m in LANE_ITEMS
    ]
    pipelines = [RUNNER.build_pipeline(config, m) for config, m in LANE_ITEMS]
    batched = OutOfOrderPipeline.run_batch(
        pipelines, trace, measure_from=measure_from, min_lanes=1
    )
    assert batched == sequential


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=8, deadline=None)
def test_same_map_lanes_agree_on_random_traces(seed):
    """Identical lanes through one batch must produce identical results
    (catches any cross-lane state bleed in the fused kernels)."""
    trace = random_trace(seed, 400)
    pipelines = [RUNNER.build_pipeline(LV_BLOCK, 0) for _ in range(3)]
    results = OutOfOrderPipeline.run_batch(
        pipelines, trace, measure_from=0, min_lanes=1
    )
    assert results[0] == results[1] == results[2]
