"""Property-based tests (hypothesis) on the core data structures and the
Section IV closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.capacity_dist import CapacityDistribution, block_fault_probability
from repro.analysis.incremental import incremental_word_disable_capacity
from repro.analysis.urn import (
    expected_capacity_fraction,
    expected_faulty_blocks,
    expected_faulty_blocks_exact,
    expected_faulty_blocks_hypergeometric,
    faulty_block_fraction,
    pfail_for_capacity,
)
from repro.analysis.word_disable import (
    half_block_fail_probability,
    whole_cache_failure_probability,
    word_fault_probability,
)
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.victim import VictimCache
from repro.faults import CacheGeometry, FaultMap

pfails = st.floats(min_value=0.0, max_value=0.05, allow_nan=False)
small_dk = st.tuples(
    st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=200)
)


class TestUrnProperties:
    @given(dk=small_dk, n_frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_eq1_bounds(self, dk, n_frac):
        """0 <= u <= min(d, n) for every valid input."""
        d, k = dk
        n = int(n_frac * d * k)
        u = expected_faulty_blocks_exact(d, k, n)
        assert -1e-9 <= u <= min(d, n) + 1e-9

    @given(dk=small_dk, n_frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_eq1_derivations_agree(self, dk, n_frac):
        d, k = dk
        n = int(n_frac * d * k)
        a = expected_faulty_blocks_exact(d, k, n)
        b = expected_faulty_blocks_hypergeometric(d, k, n)
        assert a == pytest.approx(b, rel=1e-6, abs=1e-9)

    @given(p=pfails, k=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_fraction_is_probability(self, p, k):
        f = faulty_block_fraction(k, p)
        assert 0.0 <= f <= 1.0

    @given(
        p1=pfails,
        p2=pfails,
        k=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_fraction_monotone_in_pfail(self, p1, p2, k):
        lo, hi = sorted((p1, p2))
        assert faulty_block_fraction(k, lo) <= faulty_block_fraction(k, hi) + 1e-12

    @given(
        p=st.floats(min_value=1e-6, max_value=0.05),
        k1=st.integers(min_value=1, max_value=500),
        k2=st.integers(min_value=501, max_value=2000),
    )
    @settings(max_examples=40, deadline=None)
    def test_bigger_blocks_lose_more(self, p, k1, k2):
        assert expected_capacity_fraction(k2, p) <= expected_capacity_fraction(k1, p)

    @given(
        capacity=st.floats(min_value=0.05, max_value=1.0),
        k=st.integers(min_value=2, max_value=2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_pfail_for_capacity_inverts(self, capacity, k):
        p = pfail_for_capacity(k, capacity)
        assert expected_capacity_fraction(k, p) == pytest.approx(capacity, rel=1e-6)


class TestDistributionProperties:
    @given(
        p=pfails,
        d=st.integers(min_value=2, max_value=256),
        k=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_pmf_normalised(self, p, d, k):
        dist = CapacityDistribution(d=d, k=k, pfail=p)
        assert dist.pmf().sum() == pytest.approx(1.0, abs=1e-7)

    @given(p=pfails, k=st.integers(min_value=1, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_pbf_consistent_with_fraction(self, p, k):
        assert block_fault_probability(k, p) == pytest.approx(
            faulty_block_fraction(k, p)
        )


class TestWordDisableProperties:
    @given(p=pfails)
    @settings(max_examples=40, deadline=None)
    def test_pwcf_is_probability(self, p):
        assert 0.0 <= whole_cache_failure_probability(p) <= 1.0

    @given(p=pfails)
    @settings(max_examples=40, deadline=None)
    def test_word_worse_than_cell(self, p):
        """A 32-bit word fails at least as often as a single cell."""
        assert word_fault_probability(p) >= p - 1e-12

    @given(p1=pfails, p2=pfails)
    @settings(max_examples=40, deadline=None)
    def test_half_block_monotone(self, p1, p2):
        lo, hi = sorted((p1, p2))
        assert half_block_fail_probability(lo) <= half_block_fail_probability(hi) + 1e-12


class TestIncrementalProperties:
    @given(p=pfails)
    @settings(max_examples=40, deadline=None)
    def test_capacity_in_unit_interval(self, p):
        assert 0.0 <= incremental_word_disable_capacity(p) <= 1.0

    @given(p=st.floats(min_value=0.0, max_value=0.002))
    @settings(max_examples=40, deadline=None)
    def test_incremental_at_least_block_pair_floor(self, p):
        """In the regime without disabled pairs, capacity >= 1/2."""
        from repro.analysis.incremental import block_pair_disabled_probability

        if block_pair_disabled_probability(p) < 1e-6:
            assert incremental_word_disable_capacity(p) >= 0.5 - 1e-9


class TestFaultMapProperties:
    @given(
        p=st.floats(min_value=0.0, max_value=0.02),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_views_partition(self, p, seed):
        geometry = CacheGeometry(size_bytes=4 * 1024, ways=4, block_bytes=64)
        fm = FaultMap.generate(geometry, p, seed=seed)
        assert fm.data_faults.sum() + fm.tag_faults.sum() == fm.num_faulty_cells
        assert fm.faulty_block_mask().sum() <= min(
            geometry.num_blocks, fm.num_faulty_cells
        )

    @given(
        p=st.floats(min_value=0.0, max_value=0.02),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_word_mask_dominated_by_block_mask(self, p, seed):
        """Any block with a faulty word is a faulty block (data view)."""
        geometry = CacheGeometry(size_bytes=4 * 1024, ways=4, block_bytes=64)
        fm = FaultMap.generate(geometry, p, seed=seed)
        has_faulty_word = fm.faulty_word_mask().any(axis=1)
        data_faulty_block = fm.faulty_block_mask(include_tag=False)
        assert np.array_equal(has_faulty_word, data_faulty_block)


class TestCacheProperties:
    geometry = CacheGeometry(size_bytes=2 * 1024, ways=4, block_bytes=64)  # 8 sets

    @given(addresses=st.lists(st.integers(min_value=0, max_value=511), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_fill_then_lookup_hits(self, addresses):
        """Immediately after a fill, the block is resident (no disabled
        ways) and a lookup hits."""
        cache = SetAssociativeCache(self.geometry)
        for addr in addresses:
            cache.fill(addr)
            assert cache.lookup(addr)

    @given(addresses=st.lists(st.integers(min_value=0, max_value=511), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = SetAssociativeCache(self.geometry)
        for addr in addresses:
            if not cache.lookup(addr):
                cache.fill(addr)
        assert len(cache.resident_blocks()) <= self.geometry.num_blocks

    @given(
        addresses=st.lists(st.integers(min_value=0, max_value=255), max_size=150),
        entries=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_victim_occupancy_bounded(self, addresses, entries):
        victim = VictimCache(entries)
        for addr in addresses:
            victim.insert(addr)
            assert victim.occupancy <= entries

    @given(addresses=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=150))
    @settings(max_examples=30, deadline=None)
    def test_victim_extract_removes(self, addresses):
        victim = VictimCache(8)
        for addr in addresses:
            victim.insert(addr)
        target = addresses[-1]  # most recent: certainly resident
        assert victim.lookup(target, extract=True)
        assert not victim.contains(target)


class TestTraceGeneratorProperties:
    @given(
        n=st.integers(min_value=10, max_value=2000),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_generated_traces_validate(self, n, seed):
        from repro.workloads.generator import generate_trace

        trace = generate_trace("gzip", n, seed=seed)
        assert len(trace) == n
        trace.validate()
