"""The event wire codec: every campaign event survives JSON transit.

``event_to_dict``/``event_from_dict`` are the campaign server's NDJSON
wire format, so the round-trip property is the API contract: any event a
``Session.run`` can yield must decode to an equal event on the far side.
Schema epoch 2 closed the one lossy edge epoch 1 had: group signatures
now cross the wire as stable content-hash digests instead of being
dropped, and epoch-1 payloads (no ``"signature"`` key) still decode.
Hypothesis drives the spec/plan shapes; explicit cases pin every member
of the union and the failure modes (foreign schema epoch, unknown type,
non-event input).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.events import (
    EVENT_SCHEMA_VERSION,
    READABLE_EVENT_SCHEMAS,
    BatchProposed,
    Converged,
    PlanReady,
    PointResult,
    Progress,
    StoreCorruption,
    StoreRecovered,
    SurrogateFit,
    TaskFailed,
    TaskRetried,
    WorkerCrashed,
    event_from_dict,
    event_to_dict,
    signature_digest,
)
from repro.campaign.plan import Plan, PlanGroup, WorkItem
from repro.campaign.resilience import Quarantined
from repro.campaign.spec import CampaignSpec
from repro.cpu.pipeline import SimResult
from repro.experiments.configs import ALL_CONFIGS, HV_BASELINE, LV_BLOCK
from repro.store.base import StoreHealth
from repro.workloads.spec2000 import ALL_BENCHMARKS


def roundtrip(event):
    """Encode -> JSON text -> decode (the full wire path)."""
    wire = json.loads(json.dumps(event_to_dict(event)))
    return event_from_dict(wire)


RESULT = SimResult(
    benchmark="gzip",
    instructions=1000,
    cycles=1700,
    branch_mispredictions=12,
    branch_predictions=240,
    hierarchy_stats={"l1d": {"hits": 900, "misses": 33}},
)

QUARANTINED = Quarantined(
    task=("gzip", LV_BLOCK, 3),
    key="deadbeef" * 8,
    attempts=3,
    error="ChaosWorkerCrash(...)",
    replay_error="ValueError('poison')",
)


class TestExplicitRoundTrips:
    def test_point_result(self):
        event = PointResult("gzip", LV_BLOCK, 3, "ab" * 32, RESULT)
        assert roundtrip(event) == event

    def test_point_result_fault_independent(self):
        event = PointResult("gzip", HV_BASELINE, None, "cd" * 32, RESULT)
        assert roundtrip(event) == event

    def test_progress(self):
        event = Progress(done=7, total=12, simulations_executed=5, schedule_passes=3)
        assert roundtrip(event) == event

    def test_task_retried(self):
        event = TaskRetried(
            tasks=(("gzip", LV_BLOCK, 0), ("gzip", HV_BASELINE, None)),
            attempt=2,
            delay=0.125,
            error="TimeoutError()",
        )
        assert roundtrip(event) == event

    def test_worker_crashed(self):
        event = WorkerCrashed(error="BrokenProcessPool", resubmitted=4)
        assert roundtrip(event) == event

    def test_task_failed(self):
        event = TaskFailed(QUARANTINED)
        assert roundtrip(event) == event

    def test_task_failed_without_replay_error(self):
        event = TaskFailed(
            Quarantined(("gzip", LV_BLOCK, 0), "ef" * 32, 1, "boom")
        )
        assert roundtrip(event) == event

    def test_store_corruption(self):
        event = StoreCorruption(
            store="sharded:/tmp/x",
            health=StoreHealth(
                records=90, duplicates=2, corrupt=1, stale=3, malformed=4, legacy=5
            ),
        )
        assert roundtrip(event) == event

    def test_store_recovered(self):
        event = StoreRecovered(key="12" * 32, attempts=2, error="OSError(28)")
        assert roundtrip(event) == event

    def test_plan_ready_carries_signature_digests(self):
        spec = CampaignSpec(
            configs=(HV_BASELINE, LV_BLOCK),
            benchmarks=("gzip",),
            n_instructions=1000,
            n_fault_maps=2,
            pfail=0.001,
            seed=7,
            warmup_instructions=100,
            figure="fig8",
        )
        items = tuple(
            WorkItem("gzip", LV_BLOCK, m, f"{m:02d}" * 32) for m in range(2)
        )
        plan = Plan(
            spec=spec,
            groups=(
                PlanGroup("gzip", merged=True, items=items, signature=("sig", 1)),
            ),
            total_points=3,
            dedup_hits=1,
            predicted_passes=1,
        )
        decoded = roundtrip(PlanReady(plan)).plan
        assert decoded.spec == spec
        assert decoded.total_points == 3
        assert decoded.dedup_hits == 1
        assert decoded.predicted_passes == 1
        assert len(decoded.groups) == 1
        group = decoded.groups[0]
        assert group.items == items
        assert group.merged is True
        # epoch 2: the signature crosses the wire as a stable digest
        assert group.signature == signature_digest(("sig", 1))
        # and the digest survives a second transit unchanged
        assert roundtrip(PlanReady(decoded)).plan.groups[0].signature == (
            group.signature
        )

    def test_surrogate_fit(self):
        event = SurrogateFit(round_index=2, training=40, members=8, delta=0.013)
        assert roundtrip(event) == event

    def test_surrogate_fit_first_round_has_no_delta(self):
        event = SurrogateFit(round_index=0, training=12, members=8, delta=None)
        assert roundtrip(event) == event

    def test_batch_proposed(self):
        spec = CampaignSpec(
            configs=(LV_BLOCK,),
            benchmarks=("gzip", "mcf"),
            n_instructions=1000,
            n_fault_maps=6,
            pfail=0.001,
            seed=7,
            warmup_instructions=100,
            figure="fig8",
        )
        event = BatchProposed(
            round_index=1,
            strategy="figure-error",
            proposed=8,
            simulated=20,
            total=66,
            specs=(spec,),
        )
        assert roundtrip(event) == event

    def test_converged(self):
        event = Converged(
            rounds=4, simulated=30, total=66, delta=0.004, reason="tolerance"
        )
        decoded = roundtrip(event)
        assert decoded == event
        assert decoded.coverage == pytest.approx(30 / 66)


class TestWireHygiene:
    def test_every_payload_is_json_native(self):
        payload = event_to_dict(PointResult("gzip", LV_BLOCK, 1, "ab" * 32, RESULT))
        assert payload["event"] == "PointResult"
        assert payload["schema"] == EVENT_SCHEMA_VERSION
        json.dumps(payload)  # would raise on live objects

    def test_non_event_rejected(self):
        with pytest.raises(TypeError, match="not a campaign event"):
            event_to_dict(object())

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign event"):
            event_from_dict({"event": "Nonsense", "schema": EVENT_SCHEMA_VERSION})

    def test_foreign_schema_rejected(self):
        payload = event_to_dict(Progress(1, 2, 3, 4))
        payload["schema"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported event schema"):
            event_from_dict(payload)

    def test_every_prior_epoch_is_still_readable(self):
        assert EVENT_SCHEMA_VERSION in READABLE_EVENT_SCHEMAS
        for epoch in range(1, EVENT_SCHEMA_VERSION + 1):
            assert epoch in READABLE_EVENT_SCHEMAS

    def test_epoch_one_plan_payload_decodes_without_signatures(self):
        # An epoch-1 peer dropped signatures entirely: its group dicts
        # have no "signature" key at all.  That payload must still decode,
        # with the signature honestly absent.
        payload = event_to_dict(
            PlanReady(
                Plan(
                    spec=CampaignSpec(
                        configs=(LV_BLOCK,),
                        benchmarks=("gzip",),
                        n_instructions=1000,
                        n_fault_maps=1,
                        pfail=0.001,
                        seed=7,
                        warmup_instructions=100,
                        figure=None,
                    ),
                    groups=(
                        PlanGroup(
                            "gzip",
                            merged=False,
                            items=(WorkItem("gzip", LV_BLOCK, 0, "ab" * 32),),
                            signature=("sig", 1),
                        ),
                    ),
                    total_points=1,
                    dedup_hits=0,
                    predicted_passes=1,
                )
            )
        )
        payload["schema"] = 1
        for group in payload["plan"]["groups"]:
            del group["signature"]
        decoded = event_from_dict(json.loads(json.dumps(payload)))
        assert decoded.plan.groups[0].signature is None


class TestSignatureDigest:
    def test_none_passes_through(self):
        assert signature_digest(None) is None

    def test_idempotent_on_digest_strings(self):
        digest = signature_digest(("sig", 1))
        assert signature_digest(digest) == digest

    def test_stable_and_content_addressed(self):
        a = signature_digest(("gzip", (0, 1, 2), 0.001))
        b = signature_digest(("gzip", (0, 1, 2), 0.001))
        c = signature_digest(("gzip", (0, 1, 3), 0.001))
        assert a == b
        assert a != c
        assert isinstance(a, str) and len(a) == 16
        int(a, 16)  # hex digest

    def test_lists_and_tuples_digest_identically(self):
        # the canonical form flattens tuple/list so schedule signatures
        # rebuilt from JSON keep the same digest
        assert signature_digest(("sig", (1, 2))) == signature_digest(
            ["sig", [1, 2]]
        )


# ---------------------------------------------------------------------------
# Property: arbitrary events round-trip
# ---------------------------------------------------------------------------

configs = st.sampled_from(ALL_CONFIGS)
benchmarks = st.sampled_from(ALL_BENCHMARKS)
keys = st.text("0123456789abcdef", min_size=64, max_size=64)
map_indices = st.one_of(st.none(), st.integers(min_value=0, max_value=63))

tasks = st.tuples(benchmarks, configs, map_indices)

results = st.builds(
    SimResult,
    benchmark=benchmarks,
    instructions=st.integers(min_value=1, max_value=10**7),
    cycles=st.integers(min_value=1, max_value=10**8),
    branch_mispredictions=st.integers(min_value=0, max_value=10**6),
    branch_predictions=st.integers(min_value=0, max_value=10**7),
    hierarchy_stats=st.dictionaries(
        st.sampled_from(["l1i", "l1d", "l2"]),
        st.dictionaries(
            st.sampled_from(["hits", "misses"]),
            st.integers(min_value=0, max_value=10**6),
            max_size=2,
        ),
        max_size=3,
    ),
)

quarantined = st.builds(
    Quarantined,
    task=tasks,
    key=keys,
    attempts=st.integers(min_value=1, max_value=5),
    error=st.text(max_size=40),
    replay_error=st.one_of(st.none(), st.text(max_size=40)),
)

specs = st.builds(
    CampaignSpec,
    configs=st.lists(configs, min_size=1, max_size=3).map(tuple),
    benchmarks=st.lists(benchmarks, min_size=1, max_size=2, unique=True).map(tuple),
    n_instructions=st.integers(min_value=1, max_value=10**7),
    n_fault_maps=st.integers(min_value=1, max_value=64),
    pfail=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    warmup_instructions=st.integers(min_value=0, max_value=10**6),
    figure=st.one_of(st.none(), st.sampled_from(["fig8", "custom"])),
)

work_items = st.builds(
    WorkItem, benchmark=benchmarks, config=configs, map_index=map_indices, key=keys
)

# Digest strings pass through signature_digest unchanged, so generating
# string-or-None signatures makes the property exact equality; the
# live-tuple -> digest edge is pinned in TestExplicitRoundTrips.
plan_groups = st.builds(
    PlanGroup,
    benchmark=benchmarks,
    merged=st.booleans(),
    items=st.lists(work_items, min_size=1, max_size=3).map(tuple),
    signature=st.one_of(
        st.none(), st.text("0123456789abcdef", min_size=16, max_size=16)
    ),
)

plans = st.builds(
    Plan,
    spec=specs,
    groups=st.lists(plan_groups, max_size=3).map(tuple),
    total_points=st.integers(min_value=0, max_value=100),
    dedup_hits=st.integers(min_value=0, max_value=100),
    predicted_passes=st.integers(min_value=0, max_value=100),
)

events = st.one_of(
    st.builds(PlanReady, plan=plans),
    st.builds(
        PointResult,
        benchmark=benchmarks,
        config=configs,
        map_index=map_indices,
        key=keys,
        result=results,
    ),
    st.builds(
        Progress,
        done=st.integers(min_value=0, max_value=10**4),
        total=st.integers(min_value=0, max_value=10**4),
        simulations_executed=st.integers(min_value=0, max_value=10**4),
        schedule_passes=st.integers(min_value=0, max_value=10**4),
    ),
    st.builds(
        TaskRetried,
        tasks=st.lists(tasks, min_size=1, max_size=3).map(tuple),
        attempt=st.integers(min_value=1, max_value=5),
        delay=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        error=st.text(max_size=40),
    ),
    st.builds(
        WorkerCrashed,
        error=st.text(max_size=40),
        resubmitted=st.integers(min_value=0, max_value=64),
    ),
    st.builds(TaskFailed, quarantined=quarantined),
    st.builds(
        StoreCorruption,
        store=st.text(max_size=40),
        health=st.builds(
            StoreHealth,
            records=st.integers(min_value=0, max_value=10**4),
            duplicates=st.integers(min_value=0, max_value=100),
            corrupt=st.integers(min_value=0, max_value=100),
            stale=st.integers(min_value=0, max_value=100),
            malformed=st.integers(min_value=0, max_value=100),
            legacy=st.integers(min_value=0, max_value=100),
        ),
    ),
    st.builds(
        StoreRecovered,
        key=keys,
        attempts=st.integers(min_value=1, max_value=5),
        error=st.text(max_size=40),
    ),
    st.builds(
        SurrogateFit,
        round_index=st.integers(min_value=0, max_value=50),
        training=st.integers(min_value=0, max_value=10**4),
        members=st.integers(min_value=2, max_value=32),
        delta=st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
        ),
    ),
    st.builds(
        BatchProposed,
        round_index=st.integers(min_value=0, max_value=50),
        strategy=st.sampled_from(["seed", "uncertainty", "figure-error", "random"]),
        proposed=st.integers(min_value=0, max_value=10**3),
        simulated=st.integers(min_value=0, max_value=10**4),
        total=st.integers(min_value=0, max_value=10**4),
        specs=st.lists(specs, max_size=2).map(tuple),
    ),
    st.builds(
        Converged,
        rounds=st.integers(min_value=0, max_value=50),
        simulated=st.integers(min_value=0, max_value=10**4),
        total=st.integers(min_value=1, max_value=10**4),
        delta=st.one_of(
            st.none(), st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
        ),
        reason=st.sampled_from(["tolerance", "budget", "exhausted", "stalled"]),
    ),
)


@settings(max_examples=120, deadline=None)
@given(event=events)
def test_any_event_round_trips_through_the_wire(event):
    assert roundtrip(event) == event
