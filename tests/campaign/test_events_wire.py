"""The event wire codec: every campaign event survives JSON transit.

``event_to_dict``/``event_from_dict`` are the campaign server's NDJSON
wire format, so the round-trip property is the API contract: any event a
``Session.run`` can yield must decode to an equal event on the far side
(modulo the one documented lossy edge — a decoded ``PlanReady``'s group
signatures are ``None``).  Hypothesis drives the spec/plan shapes;
explicit cases pin every member of the union and the failure modes
(foreign schema epoch, unknown type, non-event input).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.events import (
    EVENT_SCHEMA_VERSION,
    PlanReady,
    PointResult,
    Progress,
    StoreCorruption,
    StoreRecovered,
    TaskFailed,
    TaskRetried,
    WorkerCrashed,
    event_from_dict,
    event_to_dict,
)
from repro.campaign.plan import Plan, PlanGroup, WorkItem
from repro.campaign.resilience import Quarantined
from repro.campaign.spec import CampaignSpec
from repro.cpu.pipeline import SimResult
from repro.experiments.configs import ALL_CONFIGS, HV_BASELINE, LV_BLOCK
from repro.store.base import StoreHealth
from repro.workloads.spec2000 import ALL_BENCHMARKS


def roundtrip(event):
    """Encode -> JSON text -> decode (the full wire path)."""
    wire = json.loads(json.dumps(event_to_dict(event)))
    return event_from_dict(wire)


RESULT = SimResult(
    benchmark="gzip",
    instructions=1000,
    cycles=1700,
    branch_mispredictions=12,
    branch_predictions=240,
    hierarchy_stats={"l1d": {"hits": 900, "misses": 33}},
)

QUARANTINED = Quarantined(
    task=("gzip", LV_BLOCK, 3),
    key="deadbeef" * 8,
    attempts=3,
    error="ChaosWorkerCrash(...)",
    replay_error="ValueError('poison')",
)


class TestExplicitRoundTrips:
    def test_point_result(self):
        event = PointResult("gzip", LV_BLOCK, 3, "ab" * 32, RESULT)
        assert roundtrip(event) == event

    def test_point_result_fault_independent(self):
        event = PointResult("gzip", HV_BASELINE, None, "cd" * 32, RESULT)
        assert roundtrip(event) == event

    def test_progress(self):
        event = Progress(done=7, total=12, simulations_executed=5, schedule_passes=3)
        assert roundtrip(event) == event

    def test_task_retried(self):
        event = TaskRetried(
            tasks=(("gzip", LV_BLOCK, 0), ("gzip", HV_BASELINE, None)),
            attempt=2,
            delay=0.125,
            error="TimeoutError()",
        )
        assert roundtrip(event) == event

    def test_worker_crashed(self):
        event = WorkerCrashed(error="BrokenProcessPool", resubmitted=4)
        assert roundtrip(event) == event

    def test_task_failed(self):
        event = TaskFailed(QUARANTINED)
        assert roundtrip(event) == event

    def test_task_failed_without_replay_error(self):
        event = TaskFailed(
            Quarantined(("gzip", LV_BLOCK, 0), "ef" * 32, 1, "boom")
        )
        assert roundtrip(event) == event

    def test_store_corruption(self):
        event = StoreCorruption(
            store="sharded:/tmp/x",
            health=StoreHealth(
                records=90, duplicates=2, corrupt=1, stale=3, malformed=4, legacy=5
            ),
        )
        assert roundtrip(event) == event

    def test_store_recovered(self):
        event = StoreRecovered(key="12" * 32, attempts=2, error="OSError(28)")
        assert roundtrip(event) == event

    def test_plan_ready_drops_only_signatures(self):
        spec = CampaignSpec(
            configs=(HV_BASELINE, LV_BLOCK),
            benchmarks=("gzip",),
            n_instructions=1000,
            n_fault_maps=2,
            pfail=0.001,
            seed=7,
            warmup_instructions=100,
            figure="fig8",
        )
        items = tuple(
            WorkItem("gzip", LV_BLOCK, m, f"{m:02d}" * 32) for m in range(2)
        )
        plan = Plan(
            spec=spec,
            groups=(
                PlanGroup("gzip", merged=True, items=items, signature=("sig", 1)),
            ),
            total_points=3,
            dedup_hits=1,
            predicted_passes=1,
        )
        decoded = roundtrip(PlanReady(plan)).plan
        assert decoded.spec == spec
        assert decoded.total_points == 3
        assert decoded.dedup_hits == 1
        assert decoded.predicted_passes == 1
        assert len(decoded.groups) == 1
        group = decoded.groups[0]
        assert group.items == items
        assert group.merged is True
        # the one documented lossy edge: signatures are session-local
        assert group.signature is None


class TestWireHygiene:
    def test_every_payload_is_json_native(self):
        payload = event_to_dict(PointResult("gzip", LV_BLOCK, 1, "ab" * 32, RESULT))
        assert payload["event"] == "PointResult"
        assert payload["schema"] == EVENT_SCHEMA_VERSION
        json.dumps(payload)  # would raise on live objects

    def test_non_event_rejected(self):
        with pytest.raises(TypeError, match="not a campaign event"):
            event_to_dict(object())

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign event"):
            event_from_dict({"event": "Nonsense", "schema": EVENT_SCHEMA_VERSION})

    def test_foreign_schema_rejected(self):
        payload = event_to_dict(Progress(1, 2, 3, 4))
        payload["schema"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported event schema"):
            event_from_dict(payload)


# ---------------------------------------------------------------------------
# Property: arbitrary events round-trip
# ---------------------------------------------------------------------------

configs = st.sampled_from(ALL_CONFIGS)
benchmarks = st.sampled_from(ALL_BENCHMARKS)
keys = st.text("0123456789abcdef", min_size=64, max_size=64)
map_indices = st.one_of(st.none(), st.integers(min_value=0, max_value=63))

tasks = st.tuples(benchmarks, configs, map_indices)

results = st.builds(
    SimResult,
    benchmark=benchmarks,
    instructions=st.integers(min_value=1, max_value=10**7),
    cycles=st.integers(min_value=1, max_value=10**8),
    branch_mispredictions=st.integers(min_value=0, max_value=10**6),
    branch_predictions=st.integers(min_value=0, max_value=10**7),
    hierarchy_stats=st.dictionaries(
        st.sampled_from(["l1i", "l1d", "l2"]),
        st.dictionaries(
            st.sampled_from(["hits", "misses"]),
            st.integers(min_value=0, max_value=10**6),
            max_size=2,
        ),
        max_size=3,
    ),
)

quarantined = st.builds(
    Quarantined,
    task=tasks,
    key=keys,
    attempts=st.integers(min_value=1, max_value=5),
    error=st.text(max_size=40),
    replay_error=st.one_of(st.none(), st.text(max_size=40)),
)

specs = st.builds(
    CampaignSpec,
    configs=st.lists(configs, min_size=1, max_size=3).map(tuple),
    benchmarks=st.lists(benchmarks, min_size=1, max_size=2, unique=True).map(tuple),
    n_instructions=st.integers(min_value=1, max_value=10**7),
    n_fault_maps=st.integers(min_value=1, max_value=64),
    pfail=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    warmup_instructions=st.integers(min_value=0, max_value=10**6),
    figure=st.one_of(st.none(), st.sampled_from(["fig8", "custom"])),
)

work_items = st.builds(
    WorkItem, benchmark=benchmarks, config=configs, map_index=map_indices, key=keys
)

# Groups decode with signature=None, so generate them that way: the
# property then *is* equality, with the lossy edge pinned separately in
# TestExplicitRoundTrips.
plan_groups = st.builds(
    PlanGroup,
    benchmark=benchmarks,
    merged=st.booleans(),
    items=st.lists(work_items, min_size=1, max_size=3).map(tuple),
    signature=st.none(),
)

plans = st.builds(
    Plan,
    spec=specs,
    groups=st.lists(plan_groups, max_size=3).map(tuple),
    total_points=st.integers(min_value=0, max_value=100),
    dedup_hits=st.integers(min_value=0, max_value=100),
    predicted_passes=st.integers(min_value=0, max_value=100),
)

events = st.one_of(
    st.builds(PlanReady, plan=plans),
    st.builds(
        PointResult,
        benchmark=benchmarks,
        config=configs,
        map_index=map_indices,
        key=keys,
        result=results,
    ),
    st.builds(
        Progress,
        done=st.integers(min_value=0, max_value=10**4),
        total=st.integers(min_value=0, max_value=10**4),
        simulations_executed=st.integers(min_value=0, max_value=10**4),
        schedule_passes=st.integers(min_value=0, max_value=10**4),
    ),
    st.builds(
        TaskRetried,
        tasks=st.lists(tasks, min_size=1, max_size=3).map(tuple),
        attempt=st.integers(min_value=1, max_value=5),
        delay=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        error=st.text(max_size=40),
    ),
    st.builds(
        WorkerCrashed,
        error=st.text(max_size=40),
        resubmitted=st.integers(min_value=0, max_value=64),
    ),
    st.builds(TaskFailed, quarantined=quarantined),
    st.builds(
        StoreCorruption,
        store=st.text(max_size=40),
        health=st.builds(
            StoreHealth,
            records=st.integers(min_value=0, max_value=10**4),
            duplicates=st.integers(min_value=0, max_value=100),
            corrupt=st.integers(min_value=0, max_value=100),
            stale=st.integers(min_value=0, max_value=100),
            malformed=st.integers(min_value=0, max_value=100),
            legacy=st.integers(min_value=0, max_value=100),
        ),
    ),
    st.builds(
        StoreRecovered,
        key=keys,
        attempts=st.integers(min_value=1, max_value=5),
        error=st.text(max_size=40),
    ),
)


@settings(max_examples=120, deadline=None)
@given(event=events)
def test_any_event_round_trips_through_the_wire(event):
    assert roundtrip(event) == event
