"""CampaignSpec: JSON round-trips, settings bridge, work enumeration."""

import json

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    RunnerSettings,
    config_from_dict,
    config_to_dict,
)
from repro.core.schemes import VoltageMode
from repro.experiments.configs import (
    ALL_CONFIGS,
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
)

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip", "crafty"),
)


def spec(**overrides) -> CampaignSpec:
    base = dict(
        configs=(LV_BASELINE, LV_BLOCK),
        benchmarks=("gzip",),
        n_instructions=3_000,
        n_fault_maps=2,
        warmup_instructions=1_000,
        figure="fig8",
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestConfigSerialization:
    @pytest.mark.parametrize("config", ALL_CONFIGS)
    def test_round_trip_every_table_iii_row(self, config):
        assert config_from_dict(config_to_dict(config)) == config

    def test_voltage_serializes_by_name(self):
        data = config_to_dict(LV_BLOCK)
        assert data["voltage"] == "LOW"
        assert config_from_dict(data).voltage is VoltageMode.LOW


class TestSpecValues:
    def test_equal_specs_compare_and_hash_equal(self):
        assert spec() == spec()
        assert hash(spec()) == hash(spec())

    def test_list_inputs_freeze_to_tuples(self):
        s = CampaignSpec(configs=[LV_BASELINE], benchmarks=["gzip"])
        assert s.configs == (LV_BASELINE,)
        assert s.benchmarks == ("gzip",)
        assert s == CampaignSpec(configs=(LV_BASELINE,), benchmarks=("gzip",))

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(configs=())

    def test_fidelity_validated_like_settings(self):
        with pytest.raises(ValueError):
            spec(n_instructions=0)
        with pytest.raises(ValueError):
            spec(benchmarks=("not-a-benchmark",))

    def test_settings_bridge_round_trips(self):
        s = CampaignSpec.from_settings(SETTINGS, (LV_BASELINE,), figure="fig8")
        assert s.settings() == SETTINGS
        assert s.figure == "fig8"

    def test_from_settings_benchmark_override(self):
        s = CampaignSpec.from_settings(
            SETTINGS, (LV_BASELINE,), benchmarks=("gzip",)
        )
        assert s.benchmarks == ("gzip",)
        assert s.settings().benchmarks == ("gzip",)


class TestJsonRoundTrip:
    def test_identity(self):
        s = spec()
        assert CampaignSpec.from_json(s.to_json()) == s

    def test_dict_shape_is_json_native(self):
        data = json.loads(spec().to_json())
        assert data["figure"] == "fig8"
        assert data["benchmarks"] == ["gzip"]
        assert data["configs"][0]["scheme"] == "baseline"

    def test_unknown_schema_rejected(self):
        data = spec().to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError):
            CampaignSpec.from_dict(data)

    def test_round_trip_preserves_task_keys(self):
        s = spec(configs=(LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10))
        assert CampaignSpec.from_json(s.to_json()).task_keys() == s.task_keys()


class TestWorkItems:
    def test_fault_dependent_configs_enumerate_maps(self):
        items = list(spec().work_items())
        assert ("gzip", LV_BASELINE, None) in items
        assert ("gzip", LV_BLOCK, 0) in items
        assert ("gzip", LV_BLOCK, 1) in items
        assert len(items) == 3

    def test_duplicate_configs_enumerate_once(self):
        s = spec(configs=(LV_BLOCK, LV_BLOCK))
        assert len(list(s.work_items())) == 2

    def test_task_keys_deduplicate_content_hashes(self):
        # Two configs differing only in label share physical content.
        relabeled = LV_BLOCK.__class__(
            label="block disabling (copy)",
            scheme=LV_BLOCK.scheme,
            voltage=LV_BLOCK.voltage,
            victim_entries=LV_BLOCK.victim_entries,
        )
        s = spec(configs=(LV_BLOCK, relabeled))
        assert len(s.task_keys()) == 2  # maps 0 and 1, labels collapsed

    def test_task_keys_track_fidelity(self):
        assert spec().task_keys() != spec(seed=7).task_keys()
