"""The resilience layer: retry policy, chaos harness, fault-tolerant pool.

Two proof styles back the executor's claims:

* **Scripted pool** — :class:`ScriptedExecutor` overrides the pool
  lifecycle seams of :class:`PoolExecutor` with an in-process fake whose
  per-task outcomes (``crash``/``error``/``hang``) are scripted, so
  retry, bisection, watchdog, rebuild, and quarantine paths run
  deterministically in milliseconds.
* **Real chaos** — :mod:`repro.testing.chaos` injects faults into real
  pool workers via ``REPRO_CHAOS``; the campaign must still finish
  bit-identical to a clean serial run.
"""

import json
import os
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from functools import lru_cache

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.campaign.events import (
    PointResult,
    Progress,
    TaskFailed,
    TaskRetried,
    WorkerCrashed,
)
from repro.campaign.executors import (
    Executor,
    PoolExecutor,
    _Chunk,
    merge_counters,
    run_batch_locally,
)
from repro.campaign.resilience import (
    CampaignError,
    Quarantined,
    RetryPolicy,
    stable_unit,
)
from repro.campaign.session import Session
from repro.campaign.spec import RunnerSettings
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
)
from repro.store import result_to_dict
from repro.testing import chaos
from repro.testing.chaos import ChaosConfig, ChaosError

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip",),
)

CONFIGS = (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10)


def store_snapshot(session: Session) -> str:
    """Canonical serialisation of a session's store: key-sorted JSON of
    every result.  Line order in a JSONL store differs between serial
    and pool runs; this comparison does not."""
    payload = {
        key: result_to_dict(session.store.get(key)) for key in session.store.keys()
    }
    return json.dumps(payload, sort_keys=True)


@lru_cache(maxsize=1)
def reference_snapshot() -> str:
    """The clean serial run every resilient run must reproduce."""
    session = Session(SETTINGS)
    session.run_all(session.spec(CONFIGS))
    return store_snapshot(session)


@lru_cache(maxsize=1)
def campaign_keys() -> tuple[str, ...]:
    """The six task keys of the test campaign, in plan order."""
    session = Session(SETTINGS)
    spec = session.spec(CONFIGS)
    return tuple(session.task_key(*item) for item in spec.work_items())


# --------------------------------------------------------------------------
# Policy / primitives
# --------------------------------------------------------------------------


class TestStableUnit:
    def test_deterministic_and_in_unit_interval(self):
        a = stable_unit("backoff", "abc", 1)
        assert a == stable_unit("backoff", "abc", 1)
        assert 0.0 <= a < 1.0

    def test_distinct_parts_give_distinct_draws(self):
        draws = {stable_unit("k", i) for i in range(100)}
        assert len(draws) == 100


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(chunk_timeout=0.0)

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=5.0, jitter=0.5)
        assert policy.backoff(2, "key") == policy.backoff(2, "key")
        assert policy.backoff(2, "key") != policy.backoff(2, "other")

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base=0.1, backoff_cap=1.0, jitter=0.0
        )
        delays = [policy.backoff(a, "k") for a in range(1, 8)]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert all(d == 1.0 for d in delays[4:])

    def test_jitter_stays_within_half_band(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=1.0, jitter=0.5)
        for key in ("a", "b", "c", "d"):
            assert 0.75 <= policy.backoff(1, key) <= 1.25

    def test_zero_base_disables_backoff(self):
        assert RetryPolicy(backoff_base=0.0).backoff(3, "k") == 0.0


class TestMergeCounters:
    def test_first_observation_passes_through(self):
        assert merge_counters(None, (1, 2, 3, 4)) == (1, 2, 3, 4)

    def test_per_field_max_not_lexicographic(self):
        # The regression the satellite fixed: a tuple compare would keep
        # (2, 0, ...) wholesale and lose the larger "loaded" field.
        assert merge_counters((2, 9, 0, 1), (3, 0, 2, 0)) == (3, 9, 2, 1)
        assert merge_counters((3, 0, 2, 0), (2, 9, 0, 1)) == (3, 9, 2, 1)


class TestChunkBisect:
    def test_splits_along_batch_boundaries_first(self):
        chunk = _Chunk([["a1", "a2"], ["b1"], ["c1"]], attempts=3)
        halves = chunk.bisect(attempts=2)
        assert [h.batches for h in halves] == [[["a1", "a2"], ["b1"]], [["c1"]]]
        assert all(h.attempts == 2 for h in halves)

    def test_single_batch_splits_its_task_list(self):
        chunk = _Chunk([["t1", "t2", "t3"]])
        halves = chunk.bisect(attempts=1)
        assert [h.batches for h in halves] == [[["t1", "t2"]], [["t3"]]]

    def test_quarantined_describe_mentions_replay(self):
        task = ("gzip", LV_BLOCK, 1)
        entry = Quarantined(task, "deadbeef" * 8, 3, "boom")
        line = entry.describe()
        assert "gzip/" in line and "map1" in line and "3 attempt(s)" in line
        assert "replay" not in line
        assert "replay failed too" in Quarantined(
            task, "deadbeef" * 8, 3, "boom", replay_error="again"
        ).describe()


# --------------------------------------------------------------------------
# Chaos harness
# --------------------------------------------------------------------------


class TestChaosConfig:
    def test_parse_full_spec(self):
        config = ChaosConfig.parse("crash:0.1, hang:0.05,corrupt:0.02")
        assert (config.crash, config.hang, config.corrupt) == (0.1, 0.05, 0.02)
        assert config.active

    def test_parse_seed_and_dashed_keys(self):
        config = ChaosConfig.parse("crash:0.3,seed:7,hang-seconds:2.5")
        assert config.seed == 7
        assert config.hang_seconds == 2.5

    def test_parse_rejects_unknown_kind_and_missing_value(self):
        with pytest.raises(ValueError):
            ChaosConfig.parse("explode:0.5")
        with pytest.raises(ValueError):
            ChaosConfig.parse("crash")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(crash=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(hang_seconds=0.0)

    def test_config_from_env(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        assert chaos.config_from_env() is None
        monkeypatch.setenv(chaos.CHAOS_ENV, "crash:0.0")
        assert chaos.config_from_env() is None  # no positive rate => inert
        monkeypatch.setenv(chaos.CHAOS_ENV, "crash:0.25,seed:9")
        config = chaos.config_from_env()
        assert config is not None and config.crash == 0.25 and config.seed == 9


class TestChaosInjection:
    @pytest.fixture(autouse=True)
    def parent_role(self, monkeypatch):
        # Every test here runs in the parent role unless it opts in.
        monkeypatch.setattr(chaos, "_worker_epoch", None)
        yield
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)

    def test_worker_only_kinds_disarmed_in_parent(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "crash:1.0,hang:1.0,corrupt:1.0")
        chaos.maybe_inject("anykey")  # would os._exit in a worker

    def test_corrupt_fires_in_worker(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "corrupt:1.0")
        monkeypatch.setattr(chaos, "_worker_epoch", 0)
        with pytest.raises(ChaosError):
            chaos.maybe_inject("anykey")

    def test_poison_fires_in_any_process_and_every_epoch(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "poison:1.0")
        with pytest.raises(ChaosError):
            chaos.maybe_inject("anykey")  # parent replay fails too
        monkeypatch.setattr(chaos, "_worker_epoch", 3)
        with pytest.raises(ChaosError):
            chaos.maybe_inject("anykey")

    def test_epoch_rerolls_worker_fate(self):
        # The pool generation feeds the draw: some task that corrupts at
        # epoch 0 must pass at a later epoch (retry-after-rebuild
        # converges) — and the schedule is reproducible per seed.
        config = ChaosConfig(corrupt=0.3, seed=1)
        fates = {
            key: [
                stable_unit(config.seed, "corrupt", key, epoch) < config.corrupt
                for epoch in range(4)
            ]
            for key in campaign_keys()
        }
        assert any(f[0] and not all(f) for f in fates.values() if f[0]) or any(
            not f[0] and any(f) for f in fates.values()
        )
        again = {
            key: stable_unit(config.seed, "corrupt", key, 0) < config.corrupt
            for key in campaign_keys()
        }
        assert again == {key: fates[key][0] for key in campaign_keys()}


# --------------------------------------------------------------------------
# Scripted pool: deterministic failure schedules over a fake pool
# --------------------------------------------------------------------------


class FakePool:
    """Stands in for a ProcessPoolExecutor; carries its generation."""

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        pass


@lru_cache(maxsize=1)
def scripted_worker_session() -> Session:
    """The hidden in-process 'worker' computing real results for scripted
    ``ok`` outcomes.  Long-lived: its store dedups repeated tasks, so
    scripted tests and hypothesis examples stay cheap."""
    return Session(SETTINGS)


class ScriptedExecutor(PoolExecutor):
    """A PoolExecutor whose pool is fake and whose failures are scripted.

    ``script`` maps task keys to a queue of outcomes consumed once per
    sighting: ``crash`` fails the chunk's future with
    ``BrokenProcessPool``, ``submit-crash`` raises it at submit time,
    ``error`` fails with a worker exception, ``hang`` leaves the future
    pending forever (the watchdog must fire).  An exhausted or absent
    queue means the chunk computes real results in-process.
    """

    def __init__(self, script, workers: int = 2, retry: RetryPolicy | None = None):
        super().__init__(workers, retry=retry)
        self.script = {key: list(outcomes) for key, outcomes in script.items()}
        self.pools: list[FakePool] = []
        self.abandoned = 0

    def _make_pool(self, session, workers, epoch):
        pool = FakePool(epoch)
        self.pools.append(pool)
        return pool

    def _shutdown(self, pool):
        pass

    def _abandon(self, pool):
        self.abandoned += 1

    def _submit(self, pool, session, chunk):
        future: Future = Future()
        for task in chunk.tasks:
            outcomes = self.script.get(session.task_key(*task))
            if not outcomes:
                continue
            outcome = outcomes.pop(0)
            if outcome == "submit-crash":
                raise BrokenProcessPool("scripted pool death at submit")
            if outcome == "crash":
                future.set_exception(BrokenProcessPool("scripted worker death"))
            elif outcome == "error":
                future.set_exception(RuntimeError("scripted worker failure"))
            elif outcome == "hang":
                pass  # never completes: only the watchdog can reap it
            else:  # pragma: no cover - script typo guard
                raise AssertionError(f"unknown scripted outcome {outcome!r}")
            return future
        results = []
        for batch in chunk.batches:
            results.extend(run_batch_locally(scripted_worker_session(), batch))
        future.set_result((4242, (0, 0, 0, 0), results))
        return future


def run_scripted(script, retry: RetryPolicy, collect_error: bool = False):
    """Drive the 6-point campaign through a ScriptedExecutor; returns
    (session, events, executor, CampaignError-or-None)."""
    session = Session(SETTINGS)
    executor = ScriptedExecutor(script, workers=2, retry=retry)
    events, error = [], None
    try:
        for event in session.run(session.spec(CONFIGS), executor=executor):
            events.append(event)
    except CampaignError as exc:
        if not collect_error:
            raise
        error = exc
    return session, events, executor, error


FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)


class TestScriptedPool:
    def test_clean_run_matches_serial(self):
        session, events, executor, _ = run_scripted({}, FAST_RETRY)
        assert store_snapshot(session) == reference_snapshot()
        assert len([e for e in events if isinstance(e, PointResult)]) == 6
        assert len(executor.pools) == 1  # no rebuilds

    def test_crashing_worker_is_retried_and_succeeds(self):
        key = campaign_keys()[0]
        session, events, executor, _ = run_scripted({key: ["crash"]}, FAST_RETRY)
        assert store_snapshot(session) == reference_snapshot()
        crashed = [e for e in events if isinstance(e, WorkerCrashed)]
        retried = [e for e in events if isinstance(e, TaskRetried)]
        assert crashed and "scripted worker death" in crashed[0].error
        assert retried and retried[0].attempt == 1
        # The crash rebuilt the pool exactly once, bumping the epoch.
        assert [p.epoch for p in executor.pools] == [0, 1]
        assert not session.failures

    def test_submit_time_pool_death_rebuilds_and_resubmits(self):
        key = campaign_keys()[0]
        session, events, executor, _ = run_scripted(
            {key: ["submit-crash"]}, FAST_RETRY
        )
        assert store_snapshot(session) == reference_snapshot()
        assert any(isinstance(e, WorkerCrashed) for e in events)
        assert len(executor.pools) == 2

    def test_hung_worker_trips_watchdog_and_resubmits(self):
        key = campaign_keys()[0]
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, chunk_timeout=0.2)
        session, events, executor, _ = run_scripted({key: ["hang"]}, policy)
        assert store_snapshot(session) == reference_snapshot()
        retried = [e for e in events if isinstance(e, TaskRetried)]
        assert any("timed out" in e.error for e in retried)
        assert executor.abandoned >= 1  # the hung pool was walked away from
        assert not session.failures

    def test_deterministic_poison_is_bisected_and_quarantined(self):
        # Ten scripted failures outlast retries *and* every bisection
        # level; replay is off, so the poison task must end quarantined
        # while all five siblings land in the store.
        keys = campaign_keys()
        poison = keys[2]
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.0, replay_quarantined=False
        )
        session, events, executor, error = run_scripted(
            {poison: ["error"] * 10}, policy, collect_error=True
        )
        assert error is not None and len(error.failures) == 1
        failure = error.failures[0]
        assert failure.key == poison
        assert "scripted worker failure" in failure.error
        assert failure.replay_error is None  # replay disabled, not failed
        assert session.failures == [failure]
        # Healthy siblings all landed despite the poison neighbour.
        stored = [k for k in keys if session.store.get(k) is not None]
        assert set(stored) == set(keys) - {poison}
        # The chunk containing multiple tasks was bisected, not dropped.
        assert any(
            isinstance(e, TaskRetried) and "bisecting after" in e.error
            for e in events
        ) or all(len(e.tasks) == 1 for e in events if isinstance(e, TaskRetried))
        assert any(isinstance(e, TaskFailed) for e in events)
        assert "quarantined" in str(error)

    def test_replay_rescues_worker_environment_failures(self):
        # The same always-failing script, but replay on: the scripted
        # failures only exist in the fake pool, so the in-process replay
        # recovers the task and the campaign completes bit-identical.
        poison = campaign_keys()[2]
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0)
        session, events, executor, _ = run_scripted(
            {poison: ["error"] * 10}, policy
        )
        assert store_snapshot(session) == reference_snapshot()
        assert not session.failures
        assert not any(isinstance(e, TaskFailed) for e in events)

    def test_backoff_delay_is_respected_without_blocking_healthy_chunks(self):
        key = campaign_keys()[0]
        policy = RetryPolicy(max_attempts=3, backoff_base=0.05, jitter=0.0)
        session, events, _, _ = run_scripted({key: ["error"]}, policy)
        retried = [e for e in events if isinstance(e, TaskRetried)]
        assert retried and retried[0].delay == pytest.approx(0.05)
        assert store_snapshot(session) == reference_snapshot()

    def test_final_progress_reports_full_campaign(self):
        key = campaign_keys()[0]
        _, events, _, _ = run_scripted({key: ["crash"]}, FAST_RETRY)
        final = [e for e in events if isinstance(e, Progress)][-1]
        assert final.done == final.total == 6

    @hyp_settings(max_examples=12, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=5),
            st.lists(
                st.sampled_from(["crash", "error"]), min_size=1, max_size=4
            ),
            max_size=6,
        )
    )
    def test_any_failure_pattern_yields_serial_identical_store(self, pattern):
        """The headline property: whatever combination of worker deaths
        and worker exceptions the pool suffers — retried, bisected, or
        quarantined-then-replayed — the drained store is byte-identical
        to a clean serial run."""
        keys = campaign_keys()
        script = {keys[i]: outcomes for i, outcomes in pattern.items()}
        session, events, _, _ = run_scripted(script, FAST_RETRY)
        assert store_snapshot(session) == reference_snapshot()
        assert [e for e in events if isinstance(e, Progress)][-1].done == 6


# --------------------------------------------------------------------------
# Real pools under REPRO_CHAOS
# --------------------------------------------------------------------------


class TestRealChaos:
    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        yield

    def test_crash_chaos_campaign_is_bit_identical(self, monkeypatch):
        # crash:0.4,seed:3 kills real workers mid-campaign (validated to
        # fire for this campaign's keys); rebuilds + epoch re-rolls must
        # still drain to the exact serial store.
        monkeypatch.setenv(chaos.CHAOS_ENV, "crash:0.4,seed:3")
        session = Session(SETTINGS)
        executor = PoolExecutor(2, retry=RetryPolicy(max_attempts=5, backoff_base=0.0))
        events = list(session.run(session.spec(CONFIGS), executor=executor))
        monkeypatch.delenv(chaos.CHAOS_ENV)
        assert any(isinstance(e, WorkerCrashed) for e in events)
        assert any(isinstance(e, TaskRetried) for e in events)
        assert store_snapshot(session) == reference_snapshot()
        assert not session.failures

    def test_poison_chaos_quarantines_and_siblings_land(self, monkeypatch):
        # poison:0.2,seed:11 marks exactly one of the six keys (validated);
        # it must fail in workers *and* in the parent replay, ending
        # quarantined with a replay error while the other five land.
        monkeypatch.setenv(chaos.CHAOS_ENV, "poison:0.2,seed:11")
        session = Session(SETTINGS)
        executor = PoolExecutor(2, retry=RetryPolicy(max_attempts=2, backoff_base=0.0))
        with pytest.raises(CampaignError) as excinfo:
            for _ in session.run(session.spec(CONFIGS), executor=executor):
                pass
        monkeypatch.delenv(chaos.CHAOS_ENV)
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert "poison" in failures[0].error
        assert failures[0].replay_error is not None  # replay failed too
        stored = [k for k in campaign_keys() if session.store.get(k) is not None]
        assert len(stored) == 5 and failures[0].key not in stored
        assert excinfo.value.summary_lines()


# --------------------------------------------------------------------------
# Session failure surface
# --------------------------------------------------------------------------


class _InterruptingExecutor(Executor):
    def run(self, session, plan):
        raise KeyboardInterrupt


class TestSessionFailureSurface:
    def test_keyboard_interrupt_flushes_and_prints_resume_hint(self, capsys):
        session = Session(SETTINGS)
        with pytest.raises(KeyboardInterrupt):
            for _ in session.run(
                session.spec(CONFIGS), executor=_InterruptingExecutor()
            ):
                pass
        err = capsys.readouterr().err
        assert "interrupted" in err and "resume" in err

    def test_campaign_error_raised_only_after_drain(self):
        # Session.failures accumulates across runs; the error itself
        # carries only this run's ledger.
        poison = campaign_keys()[1]
        policy = RetryPolicy(
            max_attempts=1, backoff_base=0.0, replay_quarantined=False
        )
        session, events, _, error = run_scripted(
            {poison: ["error"] * 10}, policy, collect_error=True
        )
        assert error is not None
        # Every non-poison point streamed before the error surfaced.
        points = [e for e in events if isinstance(e, PointResult)]
        assert len(points) == 5
