"""The Session facade: streaming events, executor equivalence, lifecycle."""

import pytest

from repro.campaign.events import PlanReady, PointResult, Progress
from repro.campaign.executors import PoolExecutor, SerialExecutor
from repro.campaign.session import Session
from repro.campaign.spec import CampaignSpec, RunnerSettings
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
)
from repro.experiments.runner import ExperimentRunner
from repro.store import DiskStore, MemoryStore, open_store

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip",),
)

CONFIGS = (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10)


@pytest.fixture()
def session() -> Session:
    return Session(SETTINGS)


@pytest.fixture(scope="module")
def reference() -> dict:
    """Sequential per-point results (the legacy path) for every item."""
    sequential = Session(SETTINGS, lanes=1, mega_batch=False)
    out = {}
    for config in CONFIGS:
        indices = range(SETTINGS.n_fault_maps) if config.needs_fault_map else (None,)
        for m in indices:
            out[(config.label, m)] = sequential.simulate("gzip", config, m)
    return out


class TestStreaming:
    def test_event_stream_shape(self, session, reference):
        events = list(session.run(session.spec(CONFIGS)))
        assert isinstance(events[0], PlanReady)
        points = [e for e in events if isinstance(e, PointResult)]
        progress = [e for e in events if isinstance(e, Progress)]
        assert len(points) == events[0].plan.pending == 6
        assert progress[-1].done == progress[-1].total == 6
        # Counters stream with the events.
        assert progress[-1].simulations_executed == 6
        assert progress[-1].schedule_passes == session.schedule_passes

    def test_streamed_results_are_bit_identical(self, session, reference):
        for event in session.run(session.spec(CONFIGS)):
            if isinstance(event, PointResult):
                assert event.result == reference[
                    (event.config.label, event.map_index)
                ]
                # and the store holds what was streamed
                assert session.cached(
                    event.benchmark, event.config, event.map_index
                ) == event.result

    def test_dedup_rerun_streams_nothing_and_zero_passes(self, session):
        session.run_all(session.spec(CONFIGS))
        passes = session.schedule_passes
        events = list(session.run(session.spec(CONFIGS)))
        assert [type(e) for e in events] == [PlanReady]
        assert events[0].plan.pending == 0
        assert session.schedule_passes == passes

    def test_mismatched_fidelity_rejected_eagerly(self, session):
        other = CampaignSpec.from_settings(
            RunnerSettings(n_instructions=9_999, benchmarks=("gzip",)),
            (LV_BASELINE,),
        )
        # Validation happens at the call, not at first iteration: an
        # undrained run() must not silently swallow the error.
        with pytest.raises(ValueError):
            session.run(other)

    def test_benchmark_subset_spec_is_fine(self):
        session = Session(
            RunnerSettings(
                n_instructions=3_000,
                warmup_instructions=1_000,
                n_fault_maps=2,
                benchmarks=("gzip", "crafty"),
            )
        )
        spec = session.spec((LV_BASELINE,), benchmarks=("gzip",))
        plan = session.run_all(spec)
        assert plan.total_points == 1

    def test_pool_executor_matches_serial(self, reference):
        parallel = Session(SETTINGS)
        events = list(
            parallel.run(parallel.spec(CONFIGS), executor=PoolExecutor(2))
        )
        points = [e for e in events if isinstance(e, PointResult)]
        assert len(points) == 6
        for event in points:
            assert event.result == reference[(event.config.label, event.map_index)]
        assert parallel.simulations_executed == 6
        # Workers' schedule-pass counters aggregate into the final event.
        final = [e for e in events if isinstance(e, Progress)][-1]
        assert final.schedule_passes == parallel.schedule_passes > 0

    def test_explicit_serial_executor(self, session, reference):
        plan = session.run_all(session.spec(CONFIGS), executor=SerialExecutor())
        assert plan.pending == 6
        for config in CONFIGS:
            indices = (
                range(SETTINGS.n_fault_maps) if config.needs_fault_map else (None,)
            )
            for m in indices:
                assert session.cached("gzip", config, m) == reference[
                    (config.label, m)
                ]


class TestLegacyEquivalence:
    def test_runner_shim_shares_the_session(self, session):
        runner = ExperimentRunner.from_session(session)
        result = runner.run("gzip", LV_BLOCK, 0)
        assert session.cached("gzip", LV_BLOCK, 0) == result
        assert runner.simulations_executed == session.simulations_executed == 1
        runner.simulations_executed = 0  # legacy writers (prefill) still work
        assert session.simulations_executed == 0

    def test_session_and_runner_paths_share_keys(self, session):
        runner = ExperimentRunner(SETTINGS)
        assert runner.task_key("gzip", LV_BLOCK, 1) == session.task_key(
            "gzip", LV_BLOCK, 1
        )


class TestLifecycle:
    def test_context_manager_closes_owned_store(self, tmp_path):
        with Session(SETTINGS, store=None) as session:
            assert session.store.get("missing") is None
        assert session._closed

    def test_close_flushes_disk_store(self, tmp_path):
        store = DiskStore(tmp_path)
        with Session(SETTINGS, store=store) as session:
            session.simulate("gzip", LV_BASELINE)
        # The session flushed but did not close the caller's store...
        assert store._fh is not None
        store.close()
        # ...and the results are durable.
        reopened = DiskStore(tmp_path)
        assert len(reopened) == 1

    def test_owned_disk_store_closed_on_exit(self, tmp_path):
        store = open_store(tmp_path)
        session = Session(SETTINGS)
        session.store = store
        session.owns_store = True
        session.simulate("gzip", LV_BASELINE)
        session.close()
        assert store._fh is None  # append handle released
        session.close()  # idempotent

    def test_store_context_manager(self, tmp_path):
        with open_store(tmp_path) as store:
            session = Session(SETTINGS, store=store)
            session.simulate("gzip", LV_BASELINE)
        assert store._fh is None
        assert len(DiskStore(tmp_path)) == 1

    def test_memory_store_context_manager_is_noop(self):
        with MemoryStore() as store:
            store.flush()
        assert len(store) == 0
