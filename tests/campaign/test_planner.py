"""The unified Planner: grouping, dedup holes, predicted passes, and the
serial/parallel plan-object equivalence the redesign pins."""

import pytest

from repro.campaign.plan import Planner
from repro.campaign.session import Session
from repro.campaign.spec import CampaignSpec, RunnerSettings
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V6,
    LV_BLOCK_V10,
    LV_INCREMENTAL,
    LV_WORD,
)
from repro.experiments.parallel import plan_worker_batches
from repro.experiments.runner import ExperimentRunner

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip",),
)

CONFIGS = (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10, LV_INCREMENTAL)


@pytest.fixture()
def session() -> Session:
    return Session(SETTINGS)


def resolve(session, configs=CONFIGS):
    return Planner(session).resolve(session.spec(configs))


class TestResolution:
    def test_covers_every_work_item_once(self, session):
        plan = resolve(session)
        keys = [item.key for group in plan.groups for item in group.items]
        assert len(keys) == len(set(keys)) == 8  # 1+1+2+2+2
        assert plan.total_points == 8
        assert plan.dedup_hits == 0
        assert plan.pending == 8

    def test_structural_twins_merge_across_points(self, session):
        # Victim sizings pad to one slot axis, so the V$ variants ride
        # in the same mega-group as the baseline and plain block lanes.
        plan = resolve(session)
        merged = {
            tuple((item.config.label, item.map_index) for item in group.items)
            for group in plan.groups
        }
        assert (
            ("baseline", None),
            ("block disabling", 0),
            ("block disabling", 1),
            ("block disabling+V$ 10T", 0),
            ("block disabling+V$ 10T", 1),
        ) in merged

    def test_store_holes_counted_and_dropped(self, session):
        session.simulate("gzip", LV_BLOCK, 0)
        plan = resolve(session, (LV_BASELINE, LV_BLOCK))
        items = [
            (item.config, item.map_index)
            for group in plan.groups
            for item in group.items
        ]
        assert (LV_BLOCK, 0) not in items
        assert (LV_BLOCK, 1) in items
        assert plan.total_points == 3
        assert plan.dedup_hits == 1
        assert plan.pending == 2

    def test_mega_off_plans_per_point(self):
        session = Session(SETTINGS, mega_batch=False)
        plan = resolve(session)
        assert all(not group.merged for group in plan.groups)
        for group in plan.groups:
            labels = {item.config.label for item in group.items}
            assert len(labels) == 1

    def test_plan_matches_legacy_lane_groups(self, session):
        """The ExperimentRunner shim's plan_mega_batches is a pure view
        of the unified planner's groups."""
        runner = ExperimentRunner(session=session)
        legacy = runner.plan_mega_batches(CONFIGS)
        plan = resolve(session)
        assert [
            (g.benchmark, tuple((i.config, i.map_index) for i in g.items))
            for g in plan.groups
        ] == [(g.benchmark, g.items) for g in legacy]


class TestPredictedPasses:
    def test_prediction_matches_execution(self, session):
        plan = resolve(session)
        for group in plan.groups:
            session.execute_group(group)
        assert session.schedule_passes == plan.predicted_passes
        points = len(CONFIGS) * len(SETTINGS.benchmarks)
        assert plan.predicted_passes < points

    def test_prediction_matches_execution_per_point(self):
        session = Session(SETTINGS, mega_batch=False)
        plan = resolve(session)
        for group in plan.groups:
            session.execute_group(group)
        assert session.schedule_passes == plan.predicted_passes

    def test_prediction_with_explicit_single_lane(self):
        session = Session(SETTINGS, lanes=1)
        plan = resolve(session)
        assert plan.predicted_passes == plan.pending  # all sequential
        for group in plan.groups:
            session.execute_group(group)
        assert session.schedule_passes == plan.predicted_passes

    def test_padded_victim_merge_prediction_matches_execution(self, session):
        """Regression: a mixed 0/8/16-entry victim campaign merges into
        one padded mega-group, and the planner's pass accounting agrees
        with what the executor then actually spends (one pass)."""
        configs = (LV_BLOCK, LV_BLOCK_V6, LV_BLOCK_V10)
        plan = resolve(session, configs)
        assert len(plan.groups) == 1 and plan.groups[0].merged
        assert len(plan.groups[0]) == len(configs) * SETTINGS.n_fault_maps
        assert plan.predicted_passes == 1
        for group in plan.groups:
            session.execute_group(group)
        assert session.schedule_passes == plan.predicted_passes

    def test_empty_plan_predicts_zero(self, session):
        session.run_all(session.spec(CONFIGS))
        plan = resolve(session)
        assert plan.pending == 0
        assert plan.predicted_passes == 0


class TestWorkerBatches:
    def test_pool_consumes_the_same_plan_objects(self, session):
        """plan_worker_batches (the pool's dispatch view) is exactly the
        unified plan's groups sliced to the session's lane width."""
        plan = resolve(session)
        runner = ExperimentRunner(session=session)
        assert plan.worker_batches(session.lanes) == plan_worker_batches(
            runner, CONFIGS
        )

    def test_lane_width_slices_groups(self, session):
        plan = resolve(session)
        batches = plan.worker_batches(lanes=1)
        assert all(len(batch) == 1 for batch in batches)
        assert sum(len(batch) for batch in batches) == plan.pending


class TestDescribe:
    def test_dry_run_rendering(self, session):
        session.simulate("gzip", LV_BLOCK, 0)
        plan = resolve(session)
        text = plan.describe()
        assert "work items : 8 (1 already in store, 7 to simulate)" in text
        assert "predicted schedule passes" in text
        assert "gzip" in text
        assert "baseline" in text

    def test_empty_plan_rendering(self, session):
        session.run_all(session.spec((LV_BASELINE,)))
        plan = resolve(session, (LV_BASELINE,))
        assert "nothing to simulate" in plan.describe()
