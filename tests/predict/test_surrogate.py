"""The surrogate: a pure function of (training set, constructor args).

Determinism is the load-bearing claim — equal arguments and equal arrays
must predict byte-identically, because the predict loop's replayability
is built on it.  The rest pins the model's useful behaviours: it
interpolates a smooth trend, its uncertainty is zero where the ensemble
must agree and positive where bootstrap resamples can disagree, and its
validation fails loudly.
"""

import numpy as np
import pytest

from repro.predict.surrogate import Surrogate


def toy_problem(n=40, d=6, seed=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = X @ w + 0.01 * rng.normal(size=n)
    return X, y


class TestValidation:
    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="at least 2 members"):
            Surrogate(members=1)
        with pytest.raises(ValueError, match="ridge penalty"):
            Surrogate(ridge=0.0)
        with pytest.raises(ValueError, match="knn must be non-negative"):
            Surrogate(knn=-1)
        with pytest.raises(ValueError, match="knn_weight"):
            Surrogate(knn_weight=1.5)

    def test_fit_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="bad training shapes"):
            Surrogate().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError, match="empty training set"):
            Surrogate().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="predict before fit"):
            Surrogate().predict(np.zeros((1, 2)))

    def test_predict_requires_two_dims(self):
        X, y = toy_problem()
        model = Surrogate().fit(X, y)
        with pytest.raises(ValueError, match="must be 2-D"):
            model.predict(X[0])


class TestDeterminism:
    def test_equal_args_and_data_predict_byte_identically(self):
        X, y = toy_problem()
        query = np.linspace(-2, 2, 5 * X.shape[1]).reshape(5, X.shape[1])
        a_mean, a_std = Surrogate(seed=7).fit(X, y).predict(query)
        b_mean, b_std = Surrogate(seed=7).fit(X, y).predict(query)
        assert a_mean.tobytes() == b_mean.tobytes()
        assert a_std.tobytes() == b_std.tobytes()

    def test_seed_changes_the_ensemble(self):
        X, y = toy_problem()
        query = np.linspace(-2, 2, 5 * X.shape[1]).reshape(5, X.shape[1])
        _, a_std = Surrogate(seed=7).fit(X, y).predict(query)
        _, b_std = Surrogate(seed=8).fit(X, y).predict(query)
        assert a_std.tobytes() != b_std.tobytes()

    def test_refit_resets_state(self):
        X, y = toy_problem()
        model = Surrogate(seed=7)
        first, _ = model.fit(X, y).predict(X)
        model.fit(X * 2, y * 2)
        model.fit(X, y)
        again, _ = model.predict(X)
        assert first.tobytes() == again.tobytes()


class TestBehaviour:
    def test_fit_returns_self_and_sets_fitted(self):
        X, y = toy_problem()
        model = Surrogate()
        assert not model.fitted
        assert model.fit(X, y) is model
        assert model.fitted

    def test_interpolates_a_linear_trend(self):
        X, y = toy_problem(n=60)
        mean, _ = Surrogate(members=4).fit(X, y).predict(X)
        assert float(np.abs(mean - y).mean()) < 0.1

    def test_uncertainty_grows_away_from_the_data(self):
        X, y = toy_problem(n=60)
        model = Surrogate().fit(X, y)
        _, near = model.predict(X[:5])
        _, far = model.predict(X[:5] + 25.0)
        assert float(far.mean()) > float(near.mean())

    def test_uncertainty_is_nonnegative(self):
        X, y = toy_problem()
        _, std = Surrogate().fit(X, y).predict(X)
        assert (std >= 0).all()

    def test_constant_features_survive_standardisation(self):
        X, y = toy_problem()
        X = np.concatenate([X, np.ones((X.shape[0], 1))], axis=1)
        mean, std = Surrogate().fit(X, y).predict(X)
        assert np.isfinite(mean).all() and np.isfinite(std).all()

    def test_empty_query(self):
        X, y = toy_problem()
        mean, std = Surrogate().fit(X, y).predict(np.empty((0, X.shape[1])))
        assert mean.shape == std.shape == (0,)

    def test_oob_residuals_align_with_training_rows(self):
        X, y = toy_problem(n=50)
        model = Surrogate(seed=3).fit(X, y)
        oob = model.oob_residuals()
        assert oob.shape == y.shape
        finite = np.isfinite(oob)
        # each point is OOB of a bootstrap member with prob ~1/e, so
        # with 7 resamples almost every point gets a residual
        assert finite.mean() > 0.8
        # held-out residuals on a near-linear problem stay small
        assert float(np.abs(oob[finite]).mean()) < 0.5

    def test_oob_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="oob_residuals before fit"):
            Surrogate().oob_residuals()

    def test_oob_is_deterministic(self):
        X, y = toy_problem()
        a = Surrogate(seed=5).fit(X, y).oob_residuals()
        b = Surrogate(seed=5).fit(X, y).oob_residuals()
        assert a.tobytes() == b.tobytes()

    def test_zero_knn_weight_is_pure_ridge(self):
        X, y = toy_problem()
        a, _ = Surrogate(knn_weight=0.0, seed=1).fit(X, y).predict(X)
        b, _ = Surrogate(knn=0, seed=1).fit(X, y).predict(X)
        assert a.tobytes() == b.tobytes()
