"""The active campaign driver, end to end against real (tiny) sessions.

The acceptance claims under test:

* the loop converges for a real reason (budget / tolerance / exhausted /
  stalled) and its event stream is well-formed — seed round first, one
  ``SurrogateFit`` per round, exactly one terminal ``Converged``;
* every point the loop simulates lands in the store, so a follow-up
  full-grid campaign is **pure dedup** (``dedup_hits == report.labeled``);
* the whole run is deterministic — two fresh-store runs of the same
  (spec, settings) produce byte-identical report JSON — and
  ``replay_report`` re-derives the same estimate from the store alone;
* validation fails loudly: bad knobs, foreign settings schema, missing
  or fault-dependent baselines, fidelity drift, seed cost over budget.
"""

import pytest

from repro.campaign.events import BatchProposed, Converged, SurrogateFit
from repro.campaign.session import Session
from repro.campaign.spec import CampaignSpec, RunnerSettings
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_WORD,
)
from repro.predict.loop import (
    ActiveCampaign,
    PredictSettings,
    replay_report,
)

SETTINGS = RunnerSettings(
    n_instructions=2_000,
    warmup_instructions=500,
    n_fault_maps=3,
    benchmarks=("gzip", "mcf"),
)

# 2 benchmarks x (baseline 1 + word 1 + block 3) = 10 grid points
SPEC = CampaignSpec.from_settings(
    SETTINGS, (LV_BASELINE, LV_WORD, LV_BLOCK), figure="fig8"
)

FAST = dict(initial_maps=2, batch=4, members=4, seed=11)


class TestPredictSettings:
    def test_defaults_are_valid(self):
        PredictSettings()

    @pytest.mark.parametrize(
        "bad",
        [
            dict(budget=0.0),
            dict(budget=1.5),
            dict(batch=0),
            dict(tolerance=0.0),
            dict(patience=0),
            dict(strategy="greedy"),
            dict(initial_maps=0),
            dict(maps_step=0),
            dict(members=1),
            dict(ridge=0.0),
            dict(knn=-1),
            dict(knn_weight=2.0),
        ],
    )
    def test_bad_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            PredictSettings(**bad)

    def test_json_round_trip(self):
        settings = PredictSettings(budget=0.4, strategy="uncertainty", seed=3)
        assert PredictSettings.from_json(settings.to_json()) == settings

    def test_foreign_schema_rejected(self):
        data = PredictSettings().to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError, match="unsupported predict settings schema"):
            PredictSettings.from_dict(data)


class TestValidation:
    def test_baseline_must_be_in_the_spec(self):
        with Session(SETTINGS) as session:
            spec = CampaignSpec.from_settings(SETTINGS, (LV_BASELINE, LV_BLOCK))
            with pytest.raises(ValueError, match="not part of the spec"):
                ActiveCampaign(session, spec, baseline=LV_WORD)

    def test_baseline_must_be_fault_independent(self):
        with Session(SETTINGS) as session:
            with pytest.raises(ValueError, match="fault-independent"):
                ActiveCampaign(session, SPEC, baseline=LV_BLOCK)

    def test_spec_without_any_baseline_needs_an_explicit_one(self):
        with Session(SETTINGS) as session:
            spec = CampaignSpec.from_settings(SETTINGS, (LV_BLOCK,))
            with pytest.raises(ValueError, match="pass baseline="):
                ActiveCampaign(session, spec)

    def test_fidelity_drift_rejected(self):
        other = RunnerSettings(
            n_instructions=9_000,
            warmup_instructions=500,
            n_fault_maps=3,
            benchmarks=("gzip", "mcf"),
        )
        with Session(other) as session:
            with pytest.raises(ValueError, match="fidelity differs"):
                ActiveCampaign(session, SPEC)

    def test_map_depth_difference_is_allowed(self):
        deeper = RunnerSettings(
            n_instructions=2_000,
            warmup_instructions=500,
            n_fault_maps=16,
            benchmarks=("gzip", "mcf"),
        )
        with Session(deeper) as session:
            campaign = ActiveCampaign(session, SPEC)
            campaign.close()

    def test_seed_cost_over_budget_rejected(self):
        with Session(SETTINGS) as session:
            loop = ActiveCampaign(
                session, SPEC, PredictSettings(budget=0.2, **FAST)
            )
            with pytest.raises(ValueError, match="seed round"):
                list(loop.run())

    def test_report_before_convergence_raises(self):
        with Session(SETTINGS) as session:
            loop = ActiveCampaign(session, SPEC, PredictSettings(**FAST))
            with pytest.raises(RuntimeError, match="not converged"):
                loop.report()


class TestLoop:
    def test_exhausting_the_grid(self):
        with Session(SETTINGS) as session:
            loop = ActiveCampaign(
                session,
                SPEC,
                PredictSettings(budget=1.0, tolerance=1e-9, patience=99, **FAST),
            )
            events = list(loop.run())
            report = loop.report()
            loop.close()
            assert report.reason == "exhausted"
            assert report.labeled == report.total == 10
            assert report.predicted == 0
            assert report.coverage == 1.0
            # stream shape: seed batch first, one fit per round, one terminal
            batches = [e for e in events if isinstance(e, BatchProposed)]
            fits = [e for e in events if isinstance(e, SurrogateFit)]
            terminal = [e for e in events if isinstance(e, Converged)]
            assert batches[0].strategy == "seed"
            assert all(b.strategy == "figure-error" for b in batches[1:])
            assert len(fits) == report.rounds
            assert len(terminal) == 1 and events[-1] is terminal[0]

            # every simulated point is durable: the full grid re-plans to
            # pure dedup
            plan = session.plan(SPEC)
            assert plan.dedup_hits == report.labeled
            assert plan.pending == 0

    def test_budget_stop(self):
        with Session(SETTINGS) as session:
            loop = ActiveCampaign(session, SPEC, PredictSettings(budget=0.8, **FAST))
            report = loop.run_all()
            loop.close()
            assert report.reason == "budget"
            assert report.labeled == 8 <= loop.budget_items
            assert report.predicted == 2
            # the estimate covers every non-baseline config x benchmark
            assert set(report.estimate) == {LV_WORD.label, LV_BLOCK.label}
            for series in report.estimate.values():
                assert len(series["average"]) == len(SPEC.benchmarks)
            assert session.plan(SPEC).dedup_hits == report.labeled

    def test_tolerance_stop(self):
        with Session(SETTINGS) as session:
            loop = ActiveCampaign(
                session,
                SPEC,
                PredictSettings(budget=0.9, tolerance=10.0, patience=1, **FAST),
            )
            report = loop.run_all()
            loop.close()
            assert report.reason == "tolerance"
            assert report.delta is not None and report.delta <= 10.0
            assert report.labeled == 9  # seed 8 + one acquisition round

    def test_stalled_stop(self):
        with Session(SETTINGS) as session:
            stalling = _StallingSession(session)
            loop = ActiveCampaign(
                stalling, SPEC, PredictSettings(budget=1.0, tolerance=1e-9, **FAST)
            )
            seen_fit = False
            reason = None
            for event in loop.run():
                if isinstance(event, SurrogateFit):
                    seen_fit = True
                    stalling.refuse = True  # every later run yields nothing
                if isinstance(event, Converged):
                    reason = event.reason
            assert seen_fit
            assert reason == "stalled"
            loop.close()

    def test_figure_result_renders(self):
        with Session(SETTINGS) as session:
            loop = ActiveCampaign(session, SPEC, PredictSettings(budget=0.8, **FAST))
            report = loop.run_all()
            loop.close()
            result = report.figure_result()
            assert result.figure_id == "fig8-predicted"
            assert f"{LV_BLOCK.label} min" in result.series
            assert f"{LV_WORD.label} avg" in result.series
            # word-disable is fault-independent: no minimum series
            assert f"{LV_WORD.label} min" not in result.series
            text = result.to_text()
            assert "gzip" in text and "mcf" in text


class _StallingSession:
    """Session proxy that can start refusing work: ``run`` yields nothing
    once ``refuse`` is set, which is exactly the loop's stall condition."""

    def __init__(self, inner):
        self._inner = inner
        self.refuse = False

    @property
    def settings(self):
        return self._inner.settings

    def cached(self, *item):
        return self._inner.cached(*item)

    def derived(self, spec):
        return self._inner.derived(spec)

    def run(self, spec, **kwargs):
        if self.refuse:
            return iter(())
        return self._inner.run(spec, **kwargs)


class TestDeterminismAndReplay:
    def test_fresh_store_runs_are_byte_identical(self):
        def one_run():
            with Session(SETTINGS) as session:
                loop = ActiveCampaign(
                    session, SPEC, PredictSettings(budget=0.9, **FAST)
                )
                report = loop.run_all()
                loop.close()
                return report

        assert one_run().to_json() == one_run().to_json()

    def test_replay_reproduces_the_estimate_from_the_store(self):
        settings = PredictSettings(budget=0.8, **FAST)
        with Session(SETTINGS) as session:
            loop = ActiveCampaign(session, SPEC, settings)
            report = loop.run_all()
            loop.close()
            replay = replay_report(session, SPEC, settings)
            assert replay.reason == "replay"
            assert replay.simulated == 0
            assert replay.labeled == report.labeled
            assert replay.estimate == report.estimate

    def test_replay_of_an_empty_store_raises(self):
        with Session(SETTINGS) as session:
            with pytest.raises(RuntimeError, match="no results"):
                replay_report(session, SPEC)
