"""Acquisition: proposals are disjoint from labels, bounded by budget,
deterministic, and compile to in-grid campaign specs.

The non-negotiable safety property is that ``propose_batch`` never
proposes an already-labeled item (re-simulation would be pure waste —
and the loop counts on every PointResult being new).  The spec compiler
is pinned to the prefix-depth convention: a proposal covering map index
``m`` needs ``n_fault_maps == m + 1``, and everything else about the
reference spec carries over verbatim so the keys stay inside the grid.
"""

import pytest

from repro.campaign.spec import CampaignSpec, RunnerSettings
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
)
from repro.predict.acquisition import (
    STRATEGIES,
    CellView,
    Proposal,
    proposal_specs,
    propose_batch,
)

REFERENCE = CampaignSpec.from_settings(
    RunnerSettings(
        n_instructions=2_000,
        warmup_instructions=500,
        n_fault_maps=8,
        benchmarks=("gzip", "mcf"),
    ),
    (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10),
    figure="fig8",
)


def cell(
    benchmark="gzip",
    config=LV_BLOCK,
    max_depth=8,
    labeled=(0, 1),
    std=None,
    mean=None,
    true=None,
):
    unlabeled = tuple(m for m in range(max_depth) if m not in labeled)
    return CellView(
        benchmark=benchmark,
        config=config,
        max_depth=max_depth,
        labeled=tuple(labeled),
        unlabeled=unlabeled,
        mean=tuple(mean if mean is not None else [0.9] * len(unlabeled)),
        std=tuple(std if std is not None else [0.1] * len(unlabeled)),
        true=tuple(true if true is not None else [0.9] * len(labeled)),
    )


class TestCellView:
    def test_misaligned_predictions_rejected(self):
        with pytest.raises(ValueError, match="unlabeled/mean/std"):
            CellView("gzip", LV_BLOCK, 4, (), (0, 1), (0.9,), (0.1,), ())
        with pytest.raises(ValueError, match="labeled/true"):
            CellView("gzip", LV_BLOCK, 4, (0,), (1,), (0.9,), (0.1,), ())


class TestProposal:
    def test_depth_is_the_spec_n_fault_maps(self):
        assert Proposal("gzip", LV_BLOCK, (2, 3, 5)).depth == 6
        assert Proposal("gzip", LV_BASELINE, (None,)).depth == 1

    def test_cost_and_items(self):
        proposal = Proposal("gzip", LV_BLOCK, (2, 3))
        assert proposal.cost == 2
        assert proposal.items() == [("gzip", LV_BLOCK, 2), ("gzip", LV_BLOCK, 3)]


class TestProposeBatch:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            propose_batch("greedy", [cell()], budget=4, step=2, seed=0, round_index=1)

    def test_step_must_be_positive(self):
        with pytest.raises(ValueError, match="step"):
            propose_batch(
                "uncertainty", [cell()], budget=4, step=0, seed=0, round_index=1
            )

    def test_empty_inputs_propose_nothing(self):
        assert propose_batch("random", [], budget=4, step=2, seed=0, round_index=1) == ()
        assert (
            propose_batch("random", [cell()], budget=0, step=2, seed=0, round_index=1)
            == ()
        )
        exhausted = cell(labeled=tuple(range(8)))
        assert (
            propose_batch(
                "uncertainty", [exhausted], budget=4, step=2, seed=0, round_index=1
            )
            == ()
        )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_proposals_never_include_labeled_items(self, strategy):
        cells = [
            cell("gzip", LV_BLOCK, labeled=(0, 1, 4)),
            cell("mcf", LV_BLOCK_V10, labeled=(0,)),
            cell("gzip", LV_BASELINE, max_depth=1, labeled=()),
        ]
        # the fault-independent cell's single point is (None,)
        cells[2] = CellView(
            "gzip", LV_BASELINE, 1, (), (None,), (0.9,), (0.1,), ()
        )
        proposals = propose_batch(
            strategy, cells, budget=6, step=3, seed=9, round_index=2
        )
        assert proposals
        by_cell = {(c.benchmark, c.config): set(c.labeled) for c in cells}
        for proposal in proposals:
            labeled = by_cell[(proposal.benchmark, proposal.config)]
            assert not labeled.intersection(proposal.map_indices)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_budget_is_respected(self, strategy):
        cells = [cell("gzip"), cell("mcf", LV_BLOCK_V10, labeled=())]
        for budget in (1, 3, 5):
            proposals = propose_batch(
                strategy, cells, budget=budget, step=2, seed=0, round_index=1
            )
            assert sum(p.cost for p in proposals) <= budget

    def test_windows_extend_the_prefix_lowest_first(self):
        # labeled (0, 1, 4): the next window fills the hole at 2 before
        # any new depth
        proposals = propose_batch(
            "uncertainty",
            [cell(labeled=(0, 1, 4))],
            budget=3,
            step=3,
            seed=0,
            round_index=1,
        )
        assert proposals[0].map_indices == (2, 3, 5)

    def test_budget_beyond_step_revisits_the_ranking(self):
        proposals = propose_batch(
            "uncertainty", [cell(labeled=())], budget=5, step=2, seed=0, round_index=1
        )
        # one cell, several windows: they merge into one sorted proposal
        assert len(proposals) == 1
        assert proposals[0].map_indices == (0, 1, 2, 3, 4)

    def test_uncertainty_ranks_by_window_std(self):
        quiet = cell("gzip", std=[0.01] * 6)
        loud = cell("mcf", std=[0.5] * 6)
        proposals = propose_batch(
            "uncertainty", [quiet, loud], budget=2, step=2, seed=0, round_index=1
        )
        assert [p.benchmark for p in proposals] == ["mcf"]

    def test_figure_error_prefers_a_resting_minimum(self):
        # both cells have the same per-point std, but b's predicted min
        # undercuts its simulated min -> the min term breaks the tie
        settled = cell("gzip", mean=[0.9] * 6, true=[0.5, 0.5])
        resting = cell("mcf", mean=[0.3] * 6, true=[0.9, 0.9])
        proposals = propose_batch(
            "figure-error", [settled, resting], budget=2, step=2, seed=0, round_index=1
        )
        assert [p.benchmark for p in proposals] == ["mcf"]

    def test_scored_strategies_are_deterministic(self):
        cells = [cell("gzip"), cell("mcf", LV_BLOCK_V10, labeled=())]
        for strategy in ("uncertainty", "figure-error"):
            a = propose_batch(strategy, cells, budget=4, step=2, seed=0, round_index=3)
            b = propose_batch(strategy, cells, budget=4, step=2, seed=0, round_index=3)
            assert a == b

    def test_random_is_seed_and_round_deterministic(self):
        cells = [
            cell(benchmark, LV_BLOCK, labeled=())
            for benchmark in ("gzip", "mcf", "vpr", "gcc", "parser", "crafty")
        ]
        a = propose_batch("random", cells, budget=4, step=2, seed=5, round_index=1)
        b = propose_batch("random", cells, budget=4, step=2, seed=5, round_index=1)
        assert a == b
        other_round = propose_batch(
            "random", cells, budget=4, step=2, seed=5, round_index=2
        )
        other_seed = propose_batch(
            "random", cells, budget=4, step=2, seed=6, round_index=1
        )
        assert other_round != a or other_seed != a  # the shuffle is live


class TestProposalSpecs:
    def test_same_config_and_depth_merge(self):
        specs = proposal_specs(
            (
                Proposal("gzip", LV_BLOCK, (0, 1)),
                Proposal("mcf", LV_BLOCK, (1,)),
                Proposal("gzip", LV_BLOCK_V10, (0, 1)),
            ),
            REFERENCE,
        )
        assert len(specs) == 2
        first, second = specs
        assert first.configs == (LV_BLOCK,)
        assert first.benchmarks == ("gzip", "mcf")
        assert first.n_fault_maps == 2
        assert second.configs == (LV_BLOCK_V10,)
        assert second.benchmarks == ("gzip",)

    def test_depths_split_specs(self):
        specs = proposal_specs(
            (
                Proposal("gzip", LV_BLOCK, (0, 1)),
                Proposal("mcf", LV_BLOCK, (2, 3)),
            ),
            REFERENCE,
        )
        assert [s.n_fault_maps for s in specs] == [2, 4]

    def test_fidelity_carries_over_verbatim(self):
        (spec,) = proposal_specs((Proposal("gzip", LV_BASELINE, (None,)),), REFERENCE)
        assert spec.n_instructions == REFERENCE.n_instructions
        assert spec.warmup_instructions == REFERENCE.warmup_instructions
        assert spec.pfail == REFERENCE.pfail
        assert spec.seed == REFERENCE.seed
        assert spec.figure == REFERENCE.figure
        assert spec.n_fault_maps == 1
