"""The featurizer: deterministic, fixed-width, mechanics-encoding.

The surrogate's replayability rests on one invariant: two featurizers
built from equal :class:`RunnerSettings` map any work item to
byte-identical vectors.  The rest pins the semantic content — clean
stats for fault-independent items, effective-capacity interactions that
actually order the schemes, and loud failures for malformed items.
"""

import dataclasses

import numpy as np
import pytest

from repro.campaign.spec import RunnerSettings
from repro.experiments.configs import (
    HV_BASELINE,
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_INCREMENTAL,
    LV_WORD,
)
from repro.predict.features import SCHEME_ORDER, Featurizer

SETTINGS = RunnerSettings(
    n_instructions=2_000,
    warmup_instructions=500,
    n_fault_maps=3,
    benchmarks=("gzip", "mcf"),
)


@pytest.fixture()
def featurizer():
    return Featurizer(SETTINGS)


def feature(vector: np.ndarray, name: str) -> float:
    return float(vector[Featurizer.names.index(name)])


class TestShape:
    def test_names_and_width_align(self, featurizer):
        assert featurizer.width == len(featurizer.names)
        assert len(set(featurizer.names)) == featurizer.width  # no duplicates
        vector = featurizer.vector("gzip", LV_BLOCK, 0)
        assert vector.shape == (featurizer.width,)
        assert vector.dtype == np.float64

    def test_matrix_stacks_rows_in_item_order(self, featurizer):
        items = [("gzip", LV_BLOCK, 0), ("mcf", LV_BASELINE, None)]
        matrix = featurizer.matrix(items)
        assert matrix.shape == (2, featurizer.width)
        assert np.array_equal(matrix[0], featurizer.vector("gzip", LV_BLOCK, 0))
        assert np.array_equal(matrix[1], featurizer.vector("mcf", LV_BASELINE, None))

    def test_empty_matrix(self, featurizer):
        assert featurizer.matrix([]).shape == (0, featurizer.width)


class TestDeterminism:
    def test_equal_settings_give_byte_identical_matrices(self):
        items = [
            (benchmark, config, m if config.needs_fault_map else None)
            for benchmark in SETTINGS.benchmarks
            for config in (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10)
            for m in range(SETTINGS.n_fault_maps)
        ]
        a = Featurizer(SETTINGS).matrix(items)
        b = Featurizer(SETTINGS).matrix(items)
        assert a.tobytes() == b.tobytes()

    def test_different_maps_differ(self, featurizer):
        # fault-map geometry must actually reach the vector
        v0 = featurizer.vector("gzip", LV_BLOCK, 0)
        v1 = featurizer.vector("gzip", LV_BLOCK, 1)
        assert not np.array_equal(v0, v1)


class TestSemantics:
    def test_fault_independent_items_get_clean_stats(self, featurizer):
        for config in (HV_BASELINE, LV_BASELINE, LV_WORD):
            vector = featurizer.vector("gzip", config, None)
            assert feature(vector, "imap_capacity") == 1.0
            assert feature(vector, "dmap_capacity") == 1.0
            assert feature(vector, "dmap_crippled_sets") == 0.0

    def test_scheme_onehot(self, featurizer):
        vector = featurizer.vector("gzip", LV_BLOCK, 0)
        for name in SCHEME_ORDER:
            expected = 1.0 if name == "block-disable" else 0.0
            assert feature(vector, f"scheme_{name}") == expected

    def test_effective_capacity_orders_the_schemes(self, featurizer):
        # word-disable pins a flat half; block-disable delivers the map's
        # fault-free block fraction (close to 1 at this pfail); HIGH is 1.
        word = feature(featurizer.vector("gzip", LV_WORD, None), "eff_capacity_d")
        block = feature(featurizer.vector("gzip", LV_BLOCK, 0), "eff_capacity_d")
        high = feature(featurizer.vector("gzip", HV_BASELINE, None), "eff_capacity_d")
        assert word == 0.5
        assert word < block <= high == 1.0

    def test_victim_entries_reach_the_vector(self, featurizer):
        plain = featurizer.vector("gzip", LV_BLOCK, 0)
        victim = featurizer.vector("gzip", LV_BLOCK_V10, 0)
        assert feature(plain, "victim_norm") == 0.0
        assert feature(victim, "victim_norm") > 0.0

    def test_latency_adder_marks_word_schemes_at_low_voltage(self, featurizer):
        assert feature(featurizer.vector("gzip", LV_WORD, None), "latency_adder") == 1.0
        assert (
            feature(featurizer.vector("gzip", LV_INCREMENTAL, 0), "latency_adder")
            == 1.0
        )
        assert feature(featurizer.vector("gzip", LV_BLOCK, 0), "latency_adder") == 0.0

    def test_benchmarks_differ(self, featurizer):
        assert not np.array_equal(
            featurizer.vector("gzip", LV_BLOCK, 0),
            featurizer.vector("mcf", LV_BLOCK, 0),
        )


class TestFailures:
    def test_fault_dependent_config_requires_an_index(self, featurizer):
        with pytest.raises(ValueError, match="requires a fault-map index"):
            featurizer.vector("gzip", LV_BLOCK, None)

    def test_unknown_scheme_rejected(self, featurizer):
        bogus = dataclasses.replace(LV_BASELINE, scheme="quantum-disable")
        with pytest.raises(ValueError, match="unknown scheme"):
            featurizer.vector("gzip", bogus, None)
