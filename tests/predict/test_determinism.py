"""Hypothesis properties: the predict loop is a pure function of
(store contents, spec, seed).

Two campaigns over the same labels, spec, and settings must fit
byte-identical estimate vectors and propose identical batches — that is
what makes an active campaign replayable and its CI smoke pin-able.
And no proposal may ever contain an already-stored key: re-simulating a
labeled point would waste budget and break the loop's accounting.

The label sets are synthetic (any subset of the grid with the baseline
column present, any positive cycle counts), so the properties quantify
over far more store states than the end-to-end suite can reach.
"""

from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.campaign.spec import CampaignSpec, RunnerSettings
from repro.experiments.configs import LV_BASELINE, LV_BLOCK, LV_WORD
from repro.predict.features import Featurizer
from repro.predict.loop import ActiveCampaign, PredictSettings

SETTINGS = RunnerSettings(
    n_instructions=2_000,
    warmup_instructions=500,
    n_fault_maps=3,
    benchmarks=("gzip", "mcf"),
)
SPEC = CampaignSpec.from_settings(
    SETTINGS, (LV_BASELINE, LV_WORD, LV_BLOCK), figure="fig8"
)
ITEMS = list(SPEC.work_items())
BASELINE_ITEMS = [item for item in ITEMS if item[1] == LV_BASELINE]
OPTIONAL_ITEMS = [item for item in ITEMS if item[1] != LV_BASELINE]

# Featurization is deterministic (pinned in test_features) and slow
# enough to dominate hypothesis examples; share one grid matrix.
GRID_X = Featurizer(SETTINGS).matrix(ITEMS)


class _NullSession:
    """No store, no runner: exactly what fit/propose purity requires."""


def build_campaign(labels: dict, predict: PredictSettings) -> ActiveCampaign:
    campaign = ActiveCampaign(_NullSession(), SPEC, predict)
    campaign._X = GRID_X
    campaign.labels = dict(labels)
    return campaign


# Any store state the loop can be in: every baseline labeled (the loop
# seeds them before its first fit), any subset of the rest.
label_sets = st.builds(
    lambda chosen, cycles: {
        item: float(cycle)
        for item, cycle in zip(
            BASELINE_ITEMS + [i for i, keep in zip(OPTIONAL_ITEMS, chosen) if keep],
            cycles,
        )
    },
    chosen=st.lists(
        st.booleans(), min_size=len(OPTIONAL_ITEMS), max_size=len(OPTIONAL_ITEMS)
    ),
    cycles=st.lists(
        st.integers(min_value=1_000, max_value=50_000),
        min_size=len(ITEMS),
        max_size=len(ITEMS),
    ),
)

predict_settings = st.builds(
    PredictSettings,
    budget=st.just(1.0),
    batch=st.integers(min_value=1, max_value=8),
    strategy=st.sampled_from(["uncertainty", "figure-error", "random"]),
    maps_step=st.integers(min_value=1, max_value=3),
    members=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


@hyp_settings(max_examples=25, deadline=None)
@given(
    labels=label_sets,
    predict=predict_settings,
    round_index=st.integers(min_value=1, max_value=5),
)
def test_fit_and_propose_are_pure_functions_of_store_spec_seed(
    labels, predict, round_index
):
    first = build_campaign(labels, predict)
    second = build_campaign(labels, predict)
    vec_a = first._refit()
    vec_b = second._refit()
    assert vec_a.tobytes() == vec_b.tobytes()
    assert first._estimate == second._estimate
    assert first._propose(round_index) == second._propose(round_index)


@hyp_settings(max_examples=25, deadline=None)
@given(
    labels=label_sets,
    predict=predict_settings,
    round_index=st.integers(min_value=1, max_value=5),
)
def test_proposals_never_include_stored_keys_and_respect_the_budget(
    labels, predict, round_index
):
    campaign = build_campaign(labels, predict)
    campaign._refit()
    proposals = campaign._propose(round_index)
    proposed = [item for proposal in proposals for item in proposal.items()]
    # never a stored key, never outside the grid, never a duplicate
    assert not set(proposed) & set(labels)
    assert set(proposed) <= set(ITEMS)
    assert len(proposed) == len(set(proposed))
    assert len(proposed) <= min(predict.batch, campaign.budget_items - len(labels))


@hyp_settings(max_examples=50, deadline=None)
@given(
    settings_=st.builds(
        PredictSettings,
        budget=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        batch=st.integers(min_value=1, max_value=100),
        tolerance=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
        patience=st.integers(min_value=1, max_value=10),
        strategy=st.sampled_from(["uncertainty", "figure-error", "random"]),
        initial_maps=st.integers(min_value=1, max_value=10),
        maps_step=st.integers(min_value=1, max_value=10),
        members=st.integers(min_value=2, max_value=16),
        knn=st.integers(min_value=0, max_value=10),
        knn_weight=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
)
def test_predict_settings_round_trip_json(settings_):
    assert PredictSettings.from_json(settings_.to_json()) == settings_
