"""Backend contract: jsonl, sharded, and sqlite behind one API.

Every disk backend must satisfy the same observable contract —
durable puts, reopen fidelity, last-write-wins duplicates, damage
classification via ``health()``, atomic compaction — so the suite
parametrizes over all three and asserts identical behaviour, then pins
each backend's own mechanics (shard routing and manifest, sqlite
upsert/busy-retry, fsync knob plumbing).
"""

from __future__ import annotations

import json
import os
import sqlite3
import warnings

import pytest

from repro.store import (
    BACKENDS,
    RESULTS_FILENAME,
    SQLITE_FILENAME,
    STORE_BACKEND_ENV,
    STORE_FSYNC_ENV,
    DiskStore,
    MemoryStore,
    ShardedDiskStore,
    SqliteStore,
    detect_backend,
    fsync_from_env,
    open_store,
)
from repro.store.format import RECORD_SCHEMA_VERSION, result_to_dict
from repro.store.sharded import MANIFEST_FILENAME, SHARD_COUNT, shard_for

from store_helpers import fill, make_key, make_result


def open_backend(backend: str, directory, **kwargs):
    return open_store(str(directory), backend=backend, **kwargs)


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    return request.param


class TestContract:
    def test_put_get_reopen(self, backend, tmp_path):
        with open_backend(backend, tmp_path) as store:
            pairs = fill(store)
            for key, result in pairs:
                assert store.get(key) == result
                assert key in store
            assert len(store) == len(pairs)
        with open_backend(backend, tmp_path) as reopened:
            assert sorted(reopened.keys()) == sorted(k for k, _ in pairs)
            for key, result in pairs:
                assert reopened.get(key) == result
            assert not reopened.health().damaged

    def test_auto_detection_resolves_backend(self, backend, tmp_path):
        with open_backend(backend, tmp_path) as store:
            fill(store, 3)
        assert detect_backend(tmp_path) == backend
        with open_store(str(tmp_path)) as auto:
            assert type(auto).__name__ == type(
                open_backend(backend, tmp_path)
            ).__name__
            assert len(auto) == 3

    def test_overwrite_same_key_serves_last_value(self, backend, tmp_path):
        key = make_key(1)
        with open_backend(backend, tmp_path) as store:
            store.put(key, make_result(1))
            store.put(key, make_result(2))
            assert store.get(key) == make_result(2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # jsonl warns about the dup
            with open_backend(backend, tmp_path) as reopened:
                assert reopened.get(key) == make_result(2)
                assert len(reopened) == 1

    def test_put_after_close_reopens(self, backend, tmp_path):
        store = open_backend(backend, tmp_path)
        fill(store, 2)
        store.close()
        store.put(make_key(5), make_result(5))
        store.close()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with open_backend(backend, tmp_path) as reopened:
                assert len(reopened) == 3

    def test_compact_clean_store_is_lossless(self, backend, tmp_path):
        with open_backend(backend, tmp_path) as store:
            pairs = fill(store)
            assert store.compact() == 0
        with open_backend(backend, tmp_path) as reopened:
            for key, result in pairs:
                assert reopened.get(key) == result


class TestEnvKnobs:
    def test_backend_env_selects(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_BACKEND_ENV, "sqlite")
        with open_store(str(tmp_path)) as store:
            assert isinstance(store, SqliteStore)

    def test_explicit_backend_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_BACKEND_ENV, "sqlite")
        with open_store(str(tmp_path), backend="sharded") as store:
            assert isinstance(store, ShardedDiskStore)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            open_store(str(tmp_path), backend="tape")

    def test_empty_directory_is_memory(self):
        assert isinstance(open_store(None), MemoryStore)
        assert isinstance(open_store(""), MemoryStore)

    @pytest.mark.parametrize(
        "raw,expected",
        [("", False), ("0", False), ("false", False), ("off", False),
         ("1", True), ("true", True), ("yes", True)],
    )
    def test_fsync_env_parse(self, monkeypatch, raw, expected):
        monkeypatch.setenv(STORE_FSYNC_ENV, raw)
        assert fsync_from_env() is expected

    def test_fsync_knob_reaches_the_log(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_FSYNC_ENV, "1")
        store = open_store(str(tmp_path / "a"))
        assert store._log.fsync
        store.close()
        store = open_store(str(tmp_path / "b"), fsync=False)
        assert not store._log.fsync
        store.close()
        sq = open_store(str(tmp_path / "c"), backend="sqlite")
        assert sq.fsync
        sq.close()


class TestSharded:
    def test_records_land_in_their_shard(self, tmp_path):
        with open_backend("sharded", tmp_path) as store:
            pairs = fill(store, 24)
        for key, result in pairs:
            shard_path = tmp_path / "shards" / f"shard-{shard_for(key)}.jsonl"
            entries = [
                json.loads(line)
                for line in shard_path.read_text().splitlines()
            ]
            assert any(e["key"] == key for e in entries)

    def test_manifest_written_and_validated(self, tmp_path):
        with open_backend("sharded", tmp_path):
            pass
        manifest_path = tmp_path / "shards" / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        assert manifest["shard_count"] == SHARD_COUNT
        manifest["shard_count"] = 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="shard_count"):
            ShardedDiskStore(tmp_path)

    def test_non_hex_keys_still_route(self, tmp_path):
        with open_backend("sharded", tmp_path) as store:
            store.put("ZZZ-not-hex", make_result(1))
            assert store.get("ZZZ-not-hex") == make_result(1)
        with open_backend("sharded", tmp_path) as reopened:
            assert reopened.get("ZZZ-not-hex") == make_result(1)

    def test_damage_in_one_shard_spares_the_rest(self, tmp_path):
        with open_backend("sharded", tmp_path) as store:
            pairs = fill(store, 24)
            victim = tmp_path / "shards" / f"shard-{shard_for(pairs[0][0])}.jsonl"
        victim.write_text("garbage\n" + victim.read_text())
        with open_backend("sharded", tmp_path) as reopened:
            health = reopened.health()
            assert health.malformed == 1
            assert health.records == 24  # the garbage shadowed nothing
            assert reopened.compact() == 1
        with open_backend("sharded", tmp_path) as healed:
            assert not healed.health().damaged
            assert len(healed) == 24

    def test_shard_appends_take_flock(self, tmp_path):
        with open_backend("sharded", tmp_path) as store:
            assert all(log.lock for log in store._logs())


class TestSqlite:
    def test_upserts_never_duplicate(self, tmp_path):
        key = make_key(1)
        with open_backend("sqlite", tmp_path) as store:
            store.put(key, make_result(1))
            store.put(key, make_result(2))
        conn = sqlite3.connect(tmp_path / SQLITE_FILENAME)
        assert conn.execute("SELECT COUNT(*) FROM results").fetchone()[0] == 1
        conn.close()

    def test_rows_carry_schema_and_checksum(self, tmp_path):
        with open_backend("sqlite", tmp_path) as store:
            fill(store, 3)
        conn = sqlite3.connect(tmp_path / SQLITE_FILENAME)
        rows = conn.execute("SELECT schema, sha FROM results").fetchall()
        conn.close()
        assert all(schema == RECORD_SCHEMA_VERSION for schema, _ in rows)
        assert all(len(sha) == 64 for _, sha in rows)

    def test_bitrot_detected_and_repaired(self, tmp_path):
        with open_backend("sqlite", tmp_path) as store:
            pairs = fill(store, 6)
        conn = sqlite3.connect(tmp_path / SQLITE_FILENAME)
        conn.execute(
            "UPDATE results SET payload = replace(payload, '2007', '9007') "
            "WHERE key = ?",
            (pairs[1][0],),
        )
        conn.commit()
        conn.close()
        with open_backend("sqlite", tmp_path) as damaged:
            health = damaged.health()
            assert health.corrupt == 1
            assert health.records == 5
            assert damaged.get(pairs[1][0]) is None  # never served
            assert damaged.compact() == 1
        with open_backend("sqlite", tmp_path) as healed:
            assert not healed.health().damaged

    def test_stale_epoch_rows_reported_not_served(self, tmp_path):
        with open_backend("sqlite", tmp_path) as store:
            pairs = fill(store, 4)
        conn = sqlite3.connect(tmp_path / SQLITE_FILENAME)
        conn.execute(
            "UPDATE results SET schema = ? WHERE key = ?",
            (RECORD_SCHEMA_VERSION + 1, pairs[0][0]),
        )
        conn.commit()
        conn.close()
        with open_backend("sqlite", tmp_path) as reopened:
            assert reopened.health().stale == 1
            assert reopened.get(pairs[0][0]) is None

    def test_busy_database_retries_then_raises(self, tmp_path):
        with open_backend("sqlite", tmp_path) as store:
            fill(store, 2)
        blocker = sqlite3.connect(tmp_path / SQLITE_FILENAME)
        blocker.execute("BEGIN EXCLUSIVE")
        store = SqliteStore(tmp_path, timeout=0.02)
        try:
            with pytest.raises(sqlite3.OperationalError):
                store.put(make_key(9), make_result(9))
            assert store.write_retries >= 3
        finally:
            blocker.rollback()
            blocker.close()
            store.close()

    def test_wal_mode_enabled(self, tmp_path):
        with open_backend("sqlite", tmp_path) as store:
            fill(store, 1)
            mode = store._connection().execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
            assert mode == "wal"


class TestJsonlDamageTaxonomy:
    def test_every_damage_class_counted_separately(self, tmp_path):
        with open_backend("jsonl", tmp_path) as store:
            pairs = fill(store, 6)
        path = tmp_path / RESULTS_FILENAME
        lines = path.read_text().splitlines()
        # corrupt: flip a payload digit under the checksum
        lines[0] = lines[0].replace('"instructions": 1000', '"instructions": 1009')
        # stale: foreign schema epoch
        entry = json.loads(lines[1])
        entry["schema"] = RECORD_SCHEMA_VERSION + 5
        lines[1] = json.dumps(entry)
        # legacy: v1 shape (readable)
        entry = json.loads(lines[2])
        legacy_entry = {"key": entry["key"], "result": entry["result"]}
        lines[2] = json.dumps(legacy_entry)
        # malformed: not a record at all
        lines.append("{} definitely not json")
        path.write_text("\n".join(lines) + "\n")
        with open_backend("jsonl", tmp_path) as store:
            health = store.health()
            assert (health.corrupt, health.stale, health.malformed, health.legacy) \
                == (1, 1, 1, 1)
            assert health.records == 4  # 6 - corrupt - stale
            assert store.get(pairs[2][0]) == pairs[2][1]  # legacy served
            assert store.get(pairs[0][0]) is None  # corrupt never served
            assert store.get(pairs[1][0]) is None  # stale never served
            removed = store.compact()
            assert removed == 3  # corrupt + stale + malformed dropped
        with open_backend("jsonl", tmp_path) as healed:
            assert not healed.health().damaged
            assert healed.health().legacy == 0  # upgraded on rewrite
            line = next(
                l for l in (tmp_path / RESULTS_FILENAME).read_text().splitlines()
                if json.loads(l)["key"] == pairs[2][0]
            )
            assert json.loads(line)["schema"] == RECORD_SCHEMA_VERSION

    def test_health_describe_mentions_counts(self, tmp_path):
        with open_backend("jsonl", tmp_path) as store:
            fill(store, 2)
        path = tmp_path / RESULTS_FILENAME
        path.write_text(path.read_text() + "junk\n")
        with open_backend("jsonl", tmp_path) as store:
            text = store.health().describe()
            assert "2 record(s)" in text and "malformed=1" in text
