"""The record codec: round-trip fidelity and tamper-evidence.

The format's whole job is that *every* way a stored record can lie is
caught at decode time.  Hypothesis drives both directions: arbitrary
result payloads must round-trip bit-exactly, and arbitrary single-
character mutations of an encoded line must never decode to a different
record silently.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.format import (
    RECORD_SCHEMA_VERSION,
    CorruptRecord,
    MalformedRecord,
    RecordError,
    StaleRecord,
    decode_record,
    encode_record,
    record_checksum,
    result_from_dict,
    result_to_dict,
)

from store_helpers import make_key, make_result

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

_counts = st.integers(min_value=0, max_value=2**48)

payloads = st.fixed_dictionaries(
    {
        "benchmark": st.text(
            alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
            min_size=1,
            max_size=20,
        ),
        "instructions": _counts,
        "cycles": _counts,
        "branch_mispredictions": _counts,
        "branch_predictions": _counts,
        "hierarchy_stats": st.dictionaries(
            st.text(min_size=1, max_size=12),
            st.floats(allow_nan=False, allow_infinity=False, width=32)
            | st.integers(min_value=0, max_value=2**32),
            max_size=6,
        ),
    }
)

keys = st.text(
    alphabet="0123456789abcdef", min_size=1, max_size=64
).filter(bool)


# --------------------------------------------------------------------------
# Round trip
# --------------------------------------------------------------------------


class TestRoundTrip:
    @given(key=keys, payload=payloads)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_is_identity(self, key, payload):
        record = decode_record(encode_record(key, payload))
        assert record.key == key
        assert record.payload == payload
        assert not record.legacy

    @given(payload=payloads)
    @settings(max_examples=200, deadline=None)
    def test_result_serde_round_trips(self, payload):
        result = result_from_dict(payload)
        back = result_to_dict(result)
        assert result_from_dict(back) == result

    def test_simresult_round_trips_exactly(self):
        result = make_result(7)
        record = decode_record(encode_record("ab12", result_to_dict(result)))
        assert record.result == result

    @given(key=keys, payload=payloads)
    @settings(max_examples=100, deadline=None)
    def test_checksum_is_backend_independent(self, key, payload):
        # The checksum covers canonical JSON of (key, result, schema) —
        # re-serialising the payload any other way must not change it.
        roundtripped = json.loads(json.dumps(payload, indent=4))
        assert record_checksum(key, payload) == record_checksum(key, roundtripped)


# --------------------------------------------------------------------------
# Tamper evidence
# --------------------------------------------------------------------------

_PRINTABLE = st.characters(min_codepoint=32, max_codepoint=126)


class TestTamperEvidence:
    @given(
        key=keys,
        payload=payloads,
        position=st.integers(min_value=0),
        replacement=_PRINTABLE,
    )
    @settings(max_examples=300, deadline=None)
    def test_single_character_mutation_never_lies(
        self, key, payload, position, replacement
    ):
        line = encode_record(key, payload)
        position %= len(line)
        if line[position] == replacement:
            return
        mutated = line[:position] + replacement + line[position + 1 :]
        try:
            record = decode_record(mutated)
        except RecordError:
            return  # detected — the only acceptable loud outcome
        # The only acceptable quiet outcome: decoding to the *same*
        # record (e.g. a mutation inside a JSON escape that maps to the
        # same text).  A different key or payload slipping through
        # would be silent corruption.
        assert record.key == key and record.payload == payload

    def test_flipped_payload_digit_is_corrupt(self):
        line = encode_record("deadbeef", result_to_dict(make_result(3)))
        mutated = line.replace('"cycles": 2021', '"cycles": 9021')
        assert mutated != line
        with pytest.raises(CorruptRecord):
            decode_record(mutated)

    def test_flipped_key_is_corrupt(self):
        line = encode_record("deadbeef", result_to_dict(make_result(3)))
        with pytest.raises(CorruptRecord):
            decode_record(line.replace('"deadbeef"', '"deadbeee"'))


# --------------------------------------------------------------------------
# Classification
# --------------------------------------------------------------------------


class TestClassification:
    def test_garbage_is_malformed(self):
        for line in ("not json", "[1,2]", '{"key": "k"}', '{"result": {}}'):
            with pytest.raises(MalformedRecord):
                decode_record(line)

    def test_wrong_epoch_is_stale_not_served(self):
        entry = json.loads(encode_record("aa", result_to_dict(make_result(1))))
        entry["schema"] = RECORD_SCHEMA_VERSION + 1
        with pytest.raises(StaleRecord) as excinfo:
            decode_record(json.dumps(entry))
        assert excinfo.value.schema == RECORD_SCHEMA_VERSION + 1

    def test_legacy_v1_decodes_with_flag(self):
        result = make_result(2)
        line = json.dumps({"key": make_key(2), "result": result_to_dict(result)})
        record = decode_record(line)
        assert record.legacy
        assert record.result == result

    def test_checksummed_record_without_sha_is_malformed(self):
        entry = json.loads(encode_record("aa", result_to_dict(make_result(1))))
        del entry["sha"]  # declares a schema but carries no proof
        with pytest.raises(MalformedRecord):
            decode_record(json.dumps(entry))

    def test_incomplete_payload_is_malformed(self):
        payload = result_to_dict(make_result(1))
        del payload["cycles"]
        with pytest.raises(MalformedRecord):
            decode_record(encode_record("aa", payload))
