"""Operator tooling: store verify / repair / compact / migrate.

Exercises the CLI exactly as an operator would — through ``main(argv)``
and through the ``python -m repro.experiments store`` dispatch — against
real damaged directories, asserting exit codes, report text, and the
on-disk outcome (repair heals, migrate is lossless and verified).
"""

from __future__ import annotations

import json

import pytest

from repro.store import RESULTS_FILENAME, open_store
from repro.store.format import RECORD_SCHEMA_VERSION
from repro.store.tools import main

from store_helpers import fill, make_key, make_result


@pytest.fixture
def damaged_dir(tmp_path):
    """A jsonl store with one of each damage class plus a duplicate."""
    with open_store(str(tmp_path), backend="jsonl") as store:
        pairs = fill(store, 6)
    path = tmp_path / RESULTS_FILENAME
    lines = path.read_text().splitlines()
    lines[0] = lines[0].replace('"instructions": 1000', '"instructions": 1001')
    entry = json.loads(lines[1])
    entry["schema"] = RECORD_SCHEMA_VERSION + 1
    lines[1] = json.dumps(entry)
    lines.append("garbage")
    lines.append(lines[2])  # duplicate
    path.write_text("\n".join(lines) + "\n")
    return tmp_path, pairs


class TestVerify:
    def test_clean_store_exits_zero(self, tmp_path, capsys):
        with open_store(str(tmp_path), backend="jsonl") as store:
            fill(store, 3)
        assert main(["verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "jsonl store" in out
        assert "verify: clean" in out

    def test_damaged_store_exits_one(self, damaged_dir, capsys):
        directory, _ = damaged_dir
        assert main(["verify", str(directory)]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out
        assert "corrupt=1" in out and "stale=1" in out and "malformed=1" in out
        assert "note:" in out  # the duplicate warning, folded into the report

    def test_legacy_store_is_clean_but_flagged(self, tmp_path, capsys):
        with open_store(str(tmp_path), backend="jsonl") as store:
            fill(store, 2)
        path = tmp_path / RESULTS_FILENAME
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        path.write_text(
            "\n".join(
                json.dumps({"key": e["key"], "result": e["result"]})
                for e in entries
            )
            + "\n"
        )
        assert main(["verify", str(tmp_path)]) == 0
        assert "legacy v1" in capsys.readouterr().out

    def test_backend_flag_forces_backend(self, tmp_path, capsys):
        with open_store(str(tmp_path), backend="sqlite") as store:
            fill(store, 2)
        assert main(["verify", str(tmp_path), "--backend", "sqlite"]) == 0
        assert "sqlite store" in capsys.readouterr().out


class TestRepair:
    def test_repair_heals_then_verify_is_clean(self, damaged_dir, capsys):
        directory, pairs = damaged_dir
        assert main(["repair", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "dropped 4" in out  # corrupt + stale + malformed + duplicate
        assert main(["verify", str(directory)]) == 0
        assert "verify: clean" in capsys.readouterr().out
        with open_store(str(directory)) as store:
            # The corrupt and stale records are gone; the rest survived.
            assert store.get(pairs[0][0]) is None
            assert store.get(pairs[1][0]) is None
            for key, result in pairs[2:]:
                assert store.get(key) == result

    def test_repair_clean_store_is_noop(self, tmp_path, capsys):
        with open_store(str(tmp_path), backend="sharded") as store:
            fill(store, 4)
        before = (tmp_path / "shards").stat().st_mtime_ns
        assert main(["repair", str(tmp_path)]) == 0
        assert "nothing to do" in capsys.readouterr().out
        assert (tmp_path / "shards").stat().st_mtime_ns == before

    def test_repair_upgrades_legacy(self, tmp_path, capsys):
        with open_store(str(tmp_path), backend="jsonl") as store:
            pairs = fill(store, 2)
        path = tmp_path / RESULTS_FILENAME
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        path.write_text(
            "\n".join(
                json.dumps({"key": e["key"], "result": e["result"]})
                for e in entries
            )
            + "\n"
        )
        assert main(["repair", str(tmp_path)]) == 0
        assert "upgraded 2 legacy record(s)" in capsys.readouterr().out
        for line in path.read_text().splitlines():
            assert json.loads(line)["schema"] == RECORD_SCHEMA_VERSION
        with open_store(str(tmp_path)) as store:
            for key, result in pairs:
                assert store.get(key) == result


class TestCompact:
    def test_compact_collapses_duplicates(self, tmp_path, capsys):
        with open_store(str(tmp_path), backend="jsonl") as store:
            fill(store, 3)
            store.put(make_key(0), make_result(0))  # duplicate line
        assert main(["compact", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out and "kept 3" in out
        assert len((tmp_path / RESULTS_FILENAME).read_text().splitlines()) == 3


class TestMigrate:
    @pytest.mark.parametrize(
        "src,dst", [("jsonl", "sqlite"), ("jsonl", "sharded"),
                    ("sharded", "sqlite"), ("sqlite", "jsonl")]
    )
    def test_migration_is_lossless_and_verified(self, tmp_path, capsys, src, dst):
        source = tmp_path / "src"
        dest = tmp_path / "dst"
        with open_store(str(source), backend=src) as store:
            pairs = fill(store, 8)
        assert main(
            ["migrate", str(source), "--to", dst, "--dest", str(dest)]
        ) == 0
        out = capsys.readouterr().out
        assert f"{src} -> {dst}: copied 8 record(s)" in out
        assert "verified — every record reads back identically" in out
        with open_store(str(dest)) as migrated:
            assert sorted(migrated.keys()) == sorted(k for k, _ in pairs)
            for key, result in pairs:
                assert migrated.get(key) == result

    def test_in_place_migration_wins_auto_detection(self, tmp_path, capsys):
        with open_store(str(tmp_path), backend="jsonl") as store:
            pairs = fill(store, 5)
        assert main(["migrate", str(tmp_path), "--to", "sqlite"]) == 0
        assert "auto-detection now resolves" in capsys.readouterr().out
        with open_store(str(tmp_path)) as store:  # auto-detects sqlite now
            assert type(store).__name__ == "SqliteStore"
            for key, result in pairs:
                assert store.get(key) == result

    def test_round_trip_jsonl_sqlite_jsonl_is_byte_stable(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        c = tmp_path / "c"
        with open_store(str(a), backend="jsonl") as store:
            fill(store, 8)
        assert main(["migrate", str(a), "--to", "sqlite", "--dest", str(b)]) == 0
        assert main(["migrate", str(b), "--to", "jsonl", "--dest", str(c)]) == 0
        first = sorted((a / RESULTS_FILENAME).read_text().splitlines())
        final = sorted((c / RESULTS_FILENAME).read_text().splitlines())
        assert first == final  # checksums and all — byte-identical records

    def test_same_backend_in_place_is_refused(self, tmp_path, capsys):
        with open_store(str(tmp_path), backend="jsonl") as store:
            fill(store, 2)
        assert main(["migrate", str(tmp_path), "--to", "jsonl"]) == 1
        assert "nothing to do" in capsys.readouterr().out

    def test_migrate_skips_damaged_records(self, damaged_dir, capsys):
        directory, pairs = damaged_dir
        dest = directory / "migrated"
        assert main(
            ["migrate", str(directory), "--to", "sqlite", "--dest", str(dest)]
        ) == 0
        out = capsys.readouterr().out
        assert "copied 4 record(s)" in out  # 6 - corrupt - stale
        with open_store(str(dest)) as migrated:
            assert not migrated.health().damaged
            assert migrated.get(pairs[0][0]) is None


class TestExperimentsDispatch:
    def test_store_subcommand_routes_from_experiments_cli(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as experiments_main

        with open_store(str(tmp_path), backend="jsonl") as store:
            fill(store, 2)
        assert experiments_main(["store", "verify", str(tmp_path)]) == 0
        assert "verify: clean" in capsys.readouterr().out

    def test_module_entrypoint_exists(self):
        import repro.store.__main__  # noqa: F401  (importable = runnable)
