"""Shared builders for the storage-subsystem suite."""

from __future__ import annotations

import hashlib

from repro.cpu.pipeline import SimResult


def make_result(i: int) -> SimResult:
    """A small, distinct, JSON-round-trippable result per index."""
    return SimResult(
        benchmark=f"bench{i % 3}",
        instructions=1_000 + i,
        cycles=2_000 + 7 * i,
        branch_mispredictions=i,
        branch_predictions=10 * i + 1,
        hierarchy_stats={"l1i_hits": float(100 + i), "l2_misses": float(i)},
    )


def make_key(i: int) -> str:
    """A realistic content-hash key (64 hex chars, varied first char)."""
    return hashlib.sha256(f"task-{i}".encode()).hexdigest()


def fill(store, n: int = 12) -> "list[tuple[str, SimResult]]":
    pairs = [(make_key(i), make_result(i)) for i in range(n)]
    for key, result in pairs:
        store.put(key, result)
    return pairs
