"""Shared fixtures for the storage-subsystem suite."""

from __future__ import annotations

import pytest

from store_helpers import make_key, make_result


@pytest.fixture
def records():
    return [(make_key(i), make_result(i)) for i in range(12)]
