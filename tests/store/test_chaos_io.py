"""I/O fault injection: ChaosStore semantics and campaigns under storage chaos.

Unit half: each armed kind produces exactly its documented observable —
``disk-full``/``fsync-fail`` raise before touching the backend,
``torn-write`` plants half a record then raises, ``partial-append``
silently persists an unterminated record — deterministically from
``(seed, kind, key, attempt)``, with retries re-rolling their fate.

Integration half: a real pool campaign checkpointing through a chaos-
wrapped disk store must absorb transient write faults via the retry
policy (``StoreRecovered``), quarantine only exhausted budgets, and
still drain to a store byte-identical to a clean serial run.
"""

from __future__ import annotations

import errno
import warnings

import pytest

from repro.campaign.events import PointResult, StoreCorruption, StoreRecovered
from repro.campaign.executors import PoolExecutor
from repro.campaign.resilience import CampaignError, RetryPolicy
from repro.campaign.session import Session
from repro.campaign.spec import RunnerSettings
from repro.experiments.configs import LV_BASELINE, LV_WORD
from repro.store import DiskStore, MemoryStore
from repro.store.format import result_to_dict
from repro.testing import chaos
from repro.testing.chaos import ChaosConfig, ChaosStore

from store_helpers import fill, make_key, make_result

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip",),
)

CONFIGS = (LV_BASELINE, LV_WORD)


def snapshot(store) -> str:
    import json

    return json.dumps(
        {key: result_to_dict(store.get(key)) for key in store.keys()},
        sort_keys=True,
    )


class TestConfigParsing:
    def test_io_kinds_parse_from_env_format(self):
        config = ChaosConfig.parse(
            "torn-write:0.1,partial-append:0.2,fsync-fail:0.3,disk-full:0.4,seed:9"
        )
        assert config.torn_write == 0.1
        assert config.partial_append == 0.2
        assert config.fsync_fail == 0.3
        assert config.disk_full == 0.4
        assert config.seed == 9

    def test_io_active_distinguishes_worker_only_chaos(self):
        assert not ChaosConfig(crash=0.5).io_active
        assert ChaosConfig(crash=0.5).active
        assert ChaosConfig(torn_write=0.1).io_active
        assert ChaosConfig(torn_write=0.1).active
        assert not ChaosConfig().active

    def test_io_rates_validated(self):
        with pytest.raises(ValueError, match="disk_full"):
            ChaosConfig(disk_full=1.5)


class TestChaosStoreUnit:
    def test_reads_and_lifecycle_delegate(self):
        inner = MemoryStore()
        pairs = fill(inner, 3)
        store = ChaosStore(inner, ChaosConfig(disk_full=1.0))
        assert len(store) == 3
        assert pairs[0][0] in store
        assert store.get(pairs[0][0]) == pairs[0][1]
        assert sorted(store.keys()) == sorted(k for k, _ in pairs)
        assert store.health() == inner.health()

    def test_disk_full_raises_enospc_without_touching_backend(self):
        inner = MemoryStore()
        store = ChaosStore(inner, ChaosConfig(disk_full=1.0))
        with pytest.raises(OSError) as excinfo:
            store.put(make_key(1), make_result(1))
        assert excinfo.value.errno == errno.ENOSPC
        assert len(inner) == 0

    def test_fsync_fail_raises_eio(self):
        store = ChaosStore(MemoryStore(), ChaosConfig(fsync_fail=1.0))
        with pytest.raises(OSError) as excinfo:
            store.put(make_key(1), make_result(1))
        assert excinfo.value.errno == errno.EIO

    def test_torn_write_plants_half_a_record_then_raises(self, tmp_path):
        inner = DiskStore(tmp_path)
        store = ChaosStore(inner, ChaosConfig(torn_write=1.0))
        key = make_key(1)
        with pytest.raises(OSError):
            store.put(key, make_result(1))
        data = (tmp_path / "results.jsonl").read_bytes()
        assert data and not data.endswith(b"\n")  # half a line, no terminator
        inner.close()
        with DiskStore(tmp_path) as reopened:
            assert reopened.get(key) is None  # the tear never parses
            assert reopened.health().malformed == 1

    def test_partial_append_succeeds_silently_with_unterminated_line(
        self, tmp_path
    ):
        inner = DiskStore(tmp_path)
        store = ChaosStore(inner, ChaosConfig(partial_append=1.0))
        key = make_key(1)
        store.put(key, make_result(1))  # no exception: silent damage
        assert store.get(key) == make_result(1)  # writer believes it landed
        data = (tmp_path / "results.jsonl").read_bytes()
        assert data and not data.endswith(b"\n")
        inner.close()
        # Tail repair rescues a complete record that lost only its
        # newline — the "silent" loss is recovered on the next open.
        with DiskStore(tmp_path) as reopened:
            assert reopened.get(key) == make_result(1)
            assert not reopened.health().damaged

    def test_fate_is_deterministic_per_seed_key_attempt(self):
        config = ChaosConfig(disk_full=0.5, seed=3)
        outcomes = []
        for _ in range(2):
            store = ChaosStore(MemoryStore(), config)
            fates = []
            for i in range(20):
                try:
                    store.put(make_key(i), make_result(i))
                    fates.append("ok")
                except OSError:
                    fates.append("fail")
            outcomes.append(fates)
        assert outcomes[0] == outcomes[1]
        assert "ok" in outcomes[0] and "fail" in outcomes[0]

    def test_retry_rerolls_fate_per_attempt(self):
        # At a 50% rate a bounded retry loop must eventually land every
        # key — the attempt counter feeds the roll, so fate changes.
        store = ChaosStore(MemoryStore(), ChaosConfig(torn_write=0.5, seed=1))
        for i in range(10):
            for _ in range(64):
                try:
                    store.put(make_key(i), make_result(i))
                    break
                except OSError:
                    continue
            else:
                pytest.fail(f"key {i} never landed across 64 re-rolls")
        assert len(store) == 10


class TestSessionWrap:
    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        yield

    def test_armed_io_chaos_wraps_session_store(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "torn-write:0.2,seed:1")
        session = Session(SETTINGS)
        assert isinstance(session.store, ChaosStore)

    def test_worker_only_chaos_does_not_wrap(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "crash:0.2,seed:1")
        session = Session(SETTINGS)
        assert not isinstance(session.store, ChaosStore)

    def test_worker_processes_do_not_wrap(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "torn-write:0.2,seed:1")
        monkeypatch.setattr(chaos, "_worker_epoch", 1)
        session = Session(SETTINGS)
        assert not isinstance(session.store, ChaosStore)

    def test_already_wrapped_store_is_not_double_wrapped(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "torn-write:0.2,seed:1")
        first = Session(SETTINGS)
        second = Session(SETTINGS, store=first.store)
        assert second.store is first.store


class TestCampaignUnderIOChaos:
    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
        yield

    def reference(self) -> str:
        session = Session(SETTINGS)
        session.run_all(session.spec(CONFIGS))
        return snapshot(session.store)

    def test_transient_store_faults_recover_to_identical_figures(
        self, tmp_path, monkeypatch
    ):
        # Mixed transient faults (validated to fire for these keys/seed):
        # every raise routes through store_with_retry's backoff, every
        # recovery emits StoreRecovered, and the drained disk store is
        # byte-identical to the clean serial reference.
        monkeypatch.setenv(
            chaos.CHAOS_ENV,
            "torn-write:0.4,fsync-fail:0.2,disk-full:0.1,partial-append:0.3,seed:5",
        )
        store = DiskStore(tmp_path)
        session = Session(SETTINGS, store=store)
        assert isinstance(session.store, ChaosStore)
        executor = PoolExecutor(
            2, retry=RetryPolicy(max_attempts=8, backoff_base=0.0)
        )
        events = list(session.run(session.spec(CONFIGS), executor=executor))
        monkeypatch.delenv(chaos.CHAOS_ENV)
        assert any(isinstance(e, StoreRecovered) for e in events)
        assert not session.failures
        assert snapshot(session.store) == self.reference()
        store.close()
        # Resume from disk with chaos disarmed: whatever torn/partial
        # debris the faults left must be contained, never folded in.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with DiskStore(tmp_path) as reopened:
                clean = Session(SETTINGS, store=reopened)
                list(clean.run(clean.spec(CONFIGS)))
                assert clean.simulations_executed == 0  # all cached
                assert snapshot(clean.store) == self.reference()

    def test_exhausted_write_budget_quarantines_not_crashes(
        self, tmp_path, monkeypatch
    ):
        # A disk that never accepts a write must not kill the drain
        # loop: every task ends quarantined with the store error on
        # record (replay re-simulates, then fails on the same disk).
        monkeypatch.setenv(chaos.CHAOS_ENV, "disk-full:1.0,seed:1")
        store = DiskStore(tmp_path)
        session = Session(SETTINGS, store=store)
        executor = PoolExecutor(
            2, retry=RetryPolicy(max_attempts=2, backoff_base=0.0)
        )
        with pytest.raises(CampaignError) as excinfo:
            for _ in session.run(session.spec(CONFIGS), executor=executor):
                pass
        monkeypatch.delenv(chaos.CHAOS_ENV)
        failures = excinfo.value.failures
        assert failures
        assert all("store write failed" in f.error for f in failures)
        assert all(f.replay_error is not None for f in failures)
        store.close()

    def test_session_reports_damage_on_open(self, tmp_path):
        # A store opened over planted damage must announce it once the
        # plan is ready — the operator sees the repair hint, the figures
        # stay clean.
        with DiskStore(tmp_path) as store:
            fill(store, 2)
        path = tmp_path / "results.jsonl"
        path.write_text(path.read_text() + "garbage-tail\n")
        with DiskStore(tmp_path) as damaged:
            session = Session(SETTINGS, store=damaged)
            events = list(session.run(session.spec(CONFIGS)))
            corruption = [e for e in events if isinstance(e, StoreCorruption)]
            assert len(corruption) == 1
            assert "malformed=1" in corruption[0].detail
            assert any(isinstance(e, PointResult) for e in events)
