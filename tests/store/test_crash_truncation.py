"""Crash-truncation property: a kill at any byte costs at most one record.

The durability claim of every backend is exhaustively checked by
simulating a crash at *every byte offset* of the persisted state: the
store must always open without raising, recover every record whose
write completed, never invent or mutate a record, and lose at most the
final in-flight one.  The same property holds per shard for the sharded
backend and for a truncated WAL journal on the sqlite backend.
"""

from __future__ import annotations

import shutil
import sqlite3
import warnings

import pytest

from repro.store import DiskStore, ShardedDiskStore, SqliteStore
from repro.store.sharded import shard_filename, shard_for
from repro.store.sqlite import SQLITE_FILENAME

from store_helpers import fill, make_key, make_result


def complete_lines(data: bytes) -> "list[bytes]":
    """Lines whose terminating newline made it to disk."""
    return data.split(b"\n")[:-1] if data else []


def quiet_open(cls, directory):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return cls(directory)


def check_truncations(tmp_path, cls, log_path, pairs, sibling_records=0):
    """Assert the crash property at every byte offset of ``log_path``.

    ``sibling_records`` counts records living outside the truncated file
    (the other shards of a sharded store) that must survive untouched.
    """
    original = log_path.read_bytes()
    # The probe append inside each iteration mutates files other than
    # the truncation victim (e.g. a sibling shard), so snapshot and
    # restore the whole directory between offsets.
    pristine = {
        path: path.read_bytes() for path in tmp_path.rglob("*") if path.is_file()
    }
    by_key = dict(pairs)
    for offset in range(len(original) + 1):
        for path, data in pristine.items():
            path.write_bytes(data)
        truncated = original[:offset]
        log_path.write_bytes(truncated)
        survivors = len(complete_lines(truncated))

        store = quiet_open(cls, tmp_path)  # must never raise
        try:
            # Lost at most the in-flight record: every fully-written line
            # is served, plus possibly a rescued newline-less tail.
            assert survivors + sibling_records <= len(store) <= (
                survivors + sibling_records + 1
            ), f"offset {offset}"
            # Never invents or mutates: everything served matches what
            # was originally written.
            for key in store.keys():
                assert store.get(key) == by_key[key], f"offset {offset}"
            # A truncated tail is at most one damaged line.
            assert store.health().malformed + store.health().corrupt <= 1

            # The log stays appendable after the crash: tail repair means
            # a new record lands intact and survives reopen.
            store.put(make_key(999), make_result(999))
        finally:
            store.close()
        reopened = quiet_open(cls, tmp_path)
        try:
            assert reopened.get(make_key(999)) == make_result(999), f"offset {offset}"
            assert len(reopened) >= survivors + sibling_records + 1
        finally:
            reopened.close()
    log_path.write_bytes(original)


class TestJsonlTruncation:
    def test_every_byte_offset(self, tmp_path):
        source = tmp_path / "source"
        with DiskStore(source) as store:
            pairs = fill(store, 4)
        work = tmp_path / "work"
        shutil.copytree(source, work)
        check_truncations(work, DiskStore, work / "results.jsonl", pairs)


class TestShardedTruncation:
    def test_every_byte_offset_of_one_shard(self, tmp_path):
        source = tmp_path / "source"
        with ShardedDiskStore(source) as store:
            pairs = fill(store, 12)
        victim_char = shard_for(pairs[0][0])
        victim_keys = {k for k, _ in pairs if shard_for(k) == victim_char}
        work = tmp_path / "work"
        shutil.copytree(source, work)
        check_truncations(
            work,
            ShardedDiskStore,
            work / "shards" / shard_filename(victim_char),
            pairs,
            sibling_records=len(pairs) - len(victim_keys),
        )


class TestSqliteTruncation:
    def test_truncated_wal_recovers_committed_prefix(self, tmp_path):
        source = tmp_path / "source"
        store = SqliteStore(source)
        pairs = fill(store, 12)
        # Copy db + WAL while the connection is open: closing would
        # checkpoint the WAL away, and the crash being modelled is
        # precisely a kill before that checkpoint.
        db = source / SQLITE_FILENAME
        wal = source / (SQLITE_FILENAME + "-wal")
        assert wal.exists() and wal.stat().st_size > 0
        db_bytes = db.read_bytes()
        wal_bytes = wal.read_bytes()
        store.close()

        by_key = dict(pairs)
        work = tmp_path / "work"
        work.mkdir()
        # Every byte of a multi-frame WAL is slow to iterate; a stride
        # coprime with the frame size still hits every region of every
        # frame across offsets.
        for offset in range(0, len(wal_bytes) + 1, 251):
            (work / SQLITE_FILENAME).write_bytes(db_bytes)
            (work / (SQLITE_FILENAME + "-wal")).write_bytes(wal_bytes[:offset])
            recovered = SqliteStore(work)  # must never raise
            try:
                # WAL recovery serves a committed prefix: a subset of
                # what was written, every value bit-exact.
                assert not recovered.health().damaged
                for key in recovered.keys():
                    assert recovered.get(key) == by_key[key], f"offset {offset}"
                recovered.put(make_key(999), make_result(999))
            finally:
                recovered.close()
            reopened = SqliteStore(work)
            try:
                assert reopened.get(make_key(999)) == make_result(999)
            finally:
                reopened.close()

    def test_full_wal_offset_recovers_everything(self, tmp_path):
        source = tmp_path / "source"
        store = SqliteStore(source)
        pairs = fill(store, 6)
        db_bytes = (source / SQLITE_FILENAME).read_bytes()
        wal_bytes = (source / (SQLITE_FILENAME + "-wal")).read_bytes()
        store.close()
        work = tmp_path / "work"
        work.mkdir()
        (work / SQLITE_FILENAME).write_bytes(db_bytes)
        (work / (SQLITE_FILENAME + "-wal")).write_bytes(wal_bytes)
        recovered = SqliteStore(work)
        try:
            assert sorted(recovered.keys()) == sorted(k for k, _ in pairs)
        finally:
            recovered.close()

    def test_truncated_main_db_fails_loudly_or_serves_subset(self, tmp_path):
        # An amputated main database is beyond silent repair; the store
        # must either refuse loudly or serve only verified records —
        # never hand back damaged bits as results.
        source = tmp_path / "source"
        with SqliteStore(source) as store:
            pairs = fill(store, 12)
        db = source / SQLITE_FILENAME
        data = db.read_bytes()
        db.write_bytes(data[: len(data) // 2])
        by_key = dict(pairs)
        try:
            store = SqliteStore(source)
        except sqlite3.DatabaseError:
            return  # loud refusal is the expected outcome
        try:
            for key in store.keys():
                assert store.get(key) == by_key[key]
        finally:
            store.close()
