"""Tests for the fully-associative victim cache."""

import pytest

from repro.cache.victim import VictimCache


class TestBasics:
    def test_miss_on_empty(self):
        vc = VictimCache(4)
        assert not vc.lookup(100)

    def test_insert_then_hit(self):
        vc = VictimCache(4)
        vc.insert(100)
        assert vc.lookup(100)

    def test_extract_semantics(self):
        """The swap: a hit removes the block (it returns to the L1)."""
        vc = VictimCache(4)
        vc.insert(100)
        assert vc.lookup(100, extract=True)
        assert not vc.contains(100)

    def test_non_extracting_lookup_refreshes(self):
        vc = VictimCache(2)
        vc.insert(1)
        vc.insert(2)
        assert vc.lookup(1, extract=False)  # 1 becomes MRU
        vc.insert(3)  # evicts 2, not 1
        assert vc.contains(1)
        assert not vc.contains(2)

    def test_capacity_eviction_is_lru(self):
        vc = VictimCache(2)
        vc.insert(1)
        vc.insert(2)
        evicted = vc.insert(3)
        assert evicted == 1
        assert not vc.contains(1)
        assert vc.contains(2)
        assert vc.contains(3)

    def test_reinsert_refreshes_not_duplicates(self):
        vc = VictimCache(2)
        vc.insert(1)
        vc.insert(2)
        vc.insert(1)  # refresh
        assert vc.occupancy == 2
        evicted = vc.insert(3)
        assert evicted == 2  # 1 was refreshed to MRU

    def test_occupancy_bounded(self):
        vc = VictimCache(3)
        for i in range(10):
            vc.insert(i)
        assert vc.occupancy == 3

    def test_stats(self):
        vc = VictimCache(4)
        vc.lookup(1)
        vc.insert(1)
        vc.lookup(1)
        assert vc.stats.accesses == 2
        assert vc.stats.misses == 1
        assert vc.stats.hits == 1
        assert vc.stats.fills == 1

    def test_flush(self):
        vc = VictimCache(4)
        vc.insert(1)
        vc.flush()
        assert not vc.contains(1)
        assert vc.occupancy == 0


class TestZeroEntries:
    """A 0-entry victim cache is the no-victim configuration."""

    def test_never_hits(self):
        vc = VictimCache(0)
        vc.insert(1)
        assert not vc.lookup(1)

    def test_insert_noop(self):
        vc = VictimCache(0)
        assert vc.insert(1) is None
        assert vc.occupancy == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VictimCache(-1)
