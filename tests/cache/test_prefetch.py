"""Tests for the next-line prefetcher."""

import numpy as np
import pytest

from repro.cache.prefetch import NextLinePrefetcher
from repro.cache.set_assoc import SetAssociativeCache
from repro.faults import CacheGeometry

GEOMETRY = CacheGeometry(size_bytes=4 * 1024, ways=4, block_bytes=64)


class TestPrefetch:
    def test_miss_prefetches_next_block(self):
        cache = SetAssociativeCache(GEOMETRY)
        pf = NextLinePrefetcher(cache)
        pf.on_demand_miss(100)
        assert cache.contains(101)
        assert pf.stats.issued == 1

    def test_degree_two(self):
        cache = SetAssociativeCache(GEOMETRY)
        pf = NextLinePrefetcher(cache, degree=2)
        pf.on_demand_miss(100)
        assert cache.contains(101)
        assert cache.contains(102)

    def test_tagged_hit_counts_useful_and_chains(self):
        cache = SetAssociativeCache(GEOMETRY)
        pf = NextLinePrefetcher(cache)
        pf.on_demand_miss(100)  # prefetches 101
        pf.on_demand_hit(101)  # useful, chains to 102
        assert pf.stats.useful == 1
        assert cache.contains(102)

    def test_hit_on_demand_block_not_useful(self):
        cache = SetAssociativeCache(GEOMETRY)
        pf = NextLinePrefetcher(cache)
        cache.fill(100)
        pf.on_demand_hit(100)  # not a prefetched block
        assert pf.stats.useful == 0

    def test_no_duplicate_prefetch(self):
        cache = SetAssociativeCache(GEOMETRY)
        pf = NextLinePrefetcher(cache)
        cache.fill(101)
        pf.on_demand_miss(100)
        assert pf.stats.issued == 0  # 101 already resident

    def test_prefetch_respects_disabled_sets(self):
        enabled = np.ones((GEOMETRY.num_sets, GEOMETRY.ways), dtype=bool)
        target_set = 101 % GEOMETRY.num_sets
        enabled[target_set, :] = False
        cache = SetAssociativeCache(GEOMETRY, enabled_ways=enabled)
        pf = NextLinePrefetcher(cache)
        pf.on_demand_miss(100)
        assert not cache.contains(101)  # dropped, set fully disabled

    def test_accuracy_metric(self):
        cache = SetAssociativeCache(GEOMETRY)
        pf = NextLinePrefetcher(cache)
        pf.on_demand_miss(100)
        pf.on_demand_hit(101)
        assert pf.stats.accuracy == pytest.approx(0.5)  # 1 useful / 2 issued

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(SetAssociativeCache(GEOMETRY), degree=0)

    def test_zero_accuracy_when_idle(self):
        pf = NextLinePrefetcher(SetAssociativeCache(GEOMETRY))
        assert pf.stats.accuracy == 0.0
