"""Tests for the set-associative cache with disabled ways."""

import numpy as np
import pytest

from repro.cache.set_assoc import SetAssociativeCache
from repro.faults import CacheGeometry

GEOMETRY = CacheGeometry(size_bytes=4 * 1024, ways=4, block_bytes=64)  # 16 sets


def block_in_set(set_index: int, tag: int, geometry: CacheGeometry = GEOMETRY) -> int:
    """Construct a block address mapping to (set_index, tag)."""
    return (tag << geometry.index_bits) | set_index


class TestBasicOperation:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(GEOMETRY)
        addr = block_in_set(0, 1)
        assert not cache.lookup(addr)
        cache.fill(addr)
        assert cache.lookup(addr)

    def test_distinct_sets_do_not_interfere(self):
        cache = SetAssociativeCache(GEOMETRY)
        a = block_in_set(0, 1)
        b = block_in_set(1, 1)
        cache.fill(a)
        assert not cache.lookup(b)
        assert cache.lookup(a)

    def test_associativity_capacity(self):
        cache = SetAssociativeCache(GEOMETRY)
        addrs = [block_in_set(3, t) for t in range(4)]
        for addr in addrs:
            cache.fill(addr)
        assert all(cache.contains(a) for a in addrs)

    def test_fifth_block_evicts_lru(self):
        cache = SetAssociativeCache(GEOMETRY)
        addrs = [block_in_set(3, t) for t in range(4)]
        for addr in addrs:
            cache.fill(addr)
        for addr in addrs:
            cache.lookup(addr)  # touch in order: addrs[0] is now LRU
        evicted = cache.fill(block_in_set(3, 99))
        assert evicted == addrs[0]
        assert not cache.contains(addrs[0])

    def test_lru_respects_recency(self):
        cache = SetAssociativeCache(GEOMETRY)
        addrs = [block_in_set(2, t) for t in range(4)]
        for addr in addrs:
            cache.fill(addr)
        cache.lookup(addrs[0])  # make tag 0 MRU
        evicted = cache.fill(block_in_set(2, 50))
        assert evicted == addrs[1]

    def test_invalidate(self):
        cache = SetAssociativeCache(GEOMETRY)
        addr = block_in_set(5, 7)
        cache.fill(addr)
        assert cache.invalidate(addr)
        assert not cache.contains(addr)
        assert not cache.invalidate(addr)  # second time: not resident

    def test_flush_clears_everything(self):
        cache = SetAssociativeCache(GEOMETRY)
        addrs = [block_in_set(s, 1) for s in range(16)]
        for addr in addrs:
            cache.fill(addr)
        cache.flush()
        assert all(not cache.contains(a) for a in addrs)

    def test_contains_does_not_touch_stats(self):
        cache = SetAssociativeCache(GEOMETRY)
        cache.contains(block_in_set(0, 1))
        assert cache.stats.accesses == 0

    def test_stats_counting(self):
        cache = SetAssociativeCache(GEOMETRY)
        addr = block_in_set(0, 1)
        cache.lookup(addr)
        cache.fill(addr)
        cache.lookup(addr)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.fills == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_dirty_writeback_counted(self):
        cache = SetAssociativeCache(GEOMETRY)
        addrs = [block_in_set(1, t) for t in range(5)]
        cache.fill(addrs[0], is_write=True)
        for addr in addrs[1:]:
            cache.fill(addr)
        assert cache.stats.writebacks == 1


class TestDisabledWays:
    def test_disabled_way_never_allocates(self):
        enabled = np.ones((16, 4), dtype=bool)
        enabled[3, :] = [True, False, False, False]  # set 3: one usable way
        cache = SetAssociativeCache(GEOMETRY, enabled_ways=enabled)
        a, b = block_in_set(3, 1), block_in_set(3, 2)
        cache.fill(a)
        cache.fill(b)  # must evict a: only one way
        assert cache.contains(b)
        assert not cache.contains(a)

    def test_fully_disabled_set_bypasses_fills(self):
        enabled = np.ones((16, 4), dtype=bool)
        enabled[7, :] = False
        cache = SetAssociativeCache(GEOMETRY, enabled_ways=enabled)
        addr = block_in_set(7, 1)
        assert cache.fill(addr) is None
        assert not cache.contains(addr)
        assert cache.stats.bypassed_fills == 1

    def test_usable_blocks_counts_enabled(self):
        enabled = np.ones((16, 4), dtype=bool)
        enabled[0, 0] = False
        enabled[5, :] = False
        cache = SetAssociativeCache(GEOMETRY, enabled_ways=enabled)
        assert cache.usable_blocks == 64 - 1 - 4
        assert cache.capacity_fraction == pytest.approx((64 - 5) / 64)

    def test_usable_ways_in_set(self):
        enabled = np.ones((16, 4), dtype=bool)
        enabled[2, 1:3] = False
        cache = SetAssociativeCache(GEOMETRY, enabled_ways=enabled)
        assert cache.usable_ways_in_set(2) == 2
        assert cache.usable_ways_in_set(0) == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(GEOMETRY, enabled_ways=np.ones((2, 2), dtype=bool))

    def test_variable_associativity_from_fault_map(self, paper_geometry):
        """End-to-end: a fault map's usable ways drive cache capacity."""
        from repro.faults import FaultMap

        fm = FaultMap.generate(paper_geometry, 0.001, seed=42)
        cache = SetAssociativeCache(paper_geometry, enabled_ways=~fm.faulty_ways_by_set())
        assert cache.usable_blocks == 512 - fm.num_faulty_blocks()


class TestResidencyInvariants:
    def test_resident_blocks_tracks_fills(self):
        cache = SetAssociativeCache(GEOMETRY)
        addrs = {block_in_set(s, t) for s in (0, 1) for t in (1, 2)}
        for addr in addrs:
            cache.fill(addr)
        assert cache.resident_blocks() == addrs

    def test_no_duplicate_blocks_after_refill(self):
        cache = SetAssociativeCache(GEOMETRY)
        addr = block_in_set(0, 1)
        cache.fill(addr)
        cache.fill(addr)  # double-fill must not duplicate
        resident = [b for b in cache.resident_blocks() if b == addr]
        assert len(resident) == 1

    def test_replacement_policy_strings(self):
        for policy in ("lru", "fifo", "random"):
            cache = SetAssociativeCache(GEOMETRY, policy=policy)
            addr = block_in_set(0, 1)
            cache.fill(addr)
            assert cache.lookup(addr)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(GEOMETRY, policy="plru")


class TestRefillSemantics:
    """fill() of an already-resident block refreshes in place — the
    residency index stays single-valued (regression: a duplicate entry
    used to corrupt it and KeyError on a later eviction)."""

    def test_repeated_fill_then_eviction_chain(self):
        cache = SetAssociativeCache(GEOMETRY)
        addr = block_in_set(0, 1)
        for _ in range(GEOMETRY.ways):
            cache.fill(addr)
            assert cache.lookup(addr)
        # Fill the set past capacity; the refreshed block must survive as
        # exactly one way and evictions must not touch its index entry.
        for tag in range(2, GEOMETRY.ways + 4):
            cache.fill(block_in_set(0, tag))
        assert len(cache.resident_blocks()) == GEOMETRY.ways

    def test_refill_marks_dirty_and_refreshes_recency(self):
        cache = SetAssociativeCache(GEOMETRY)
        victim_candidate = block_in_set(0, 1)
        cache.fill(victim_candidate)
        for tag in range(2, GEOMETRY.ways + 1):
            cache.fill(block_in_set(0, tag))
        cache.fill(victim_candidate, is_write=True)  # refresh: now MRU+dirty
        evicted = cache.fill(block_in_set(0, 99))
        assert evicted != victim_candidate  # LRU refresh took effect
        assert cache.contains(victim_candidate)
