"""Tests for the two-level memory hierarchy and its latency composition."""

import pytest

from repro.cache.hierarchy import LatencyConfig, MemoryHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.faults import CacheGeometry

L1 = CacheGeometry(size_bytes=4 * 1024, ways=4, block_bytes=64)
L2 = CacheGeometry(size_bytes=64 * 1024, ways=8, block_bytes=64)
LAT = LatencyConfig(l1i=3, l1d=3, victim=1, l2=20, memory=255)


def make_hierarchy(victim_entries: int = 0) -> MemoryHierarchy:
    return MemoryHierarchy(
        SetAssociativeCache(L1, name="l1i"),
        SetAssociativeCache(L1, name="l1d"),
        L2,
        LAT,
        victim_entries_i=victim_entries,
        victim_entries_d=victim_entries,
    )


class TestLatencyComposition:
    def test_cold_miss_pays_memory(self):
        h = make_hierarchy()
        assert h.access_data(0x100) == 3 + 255

    def test_l1_hit_after_fill(self):
        h = make_hierarchy()
        h.access_data(0x100)
        assert h.access_data(0x100) == 3

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        target = 0x40  # set 0 of a 16-set L1 (block addr grain)
        h.access_data(target)
        # Evict it from L1 with 4 conflicting blocks (same L1 set, 16 sets).
        for tag in range(1, 5):
            h.access_data(target + tag * 16)
        assert not h.l1d.contains(target)
        assert h.access_data(target) == 3 + 20

    def test_victim_hit_latency(self):
        h = make_hierarchy(victim_entries=16)
        target = 0x40
        h.access_data(target)
        for tag in range(1, 5):
            h.access_data(target + tag * 16)
        # target was evicted from L1 into the victim cache.
        assert h.access_data(target) == 3 + 1

    def test_victim_swap_returns_block_to_l1(self):
        h = make_hierarchy(victim_entries=16)
        target = 0x40
        h.access_data(target)
        for tag in range(1, 5):
            h.access_data(target + tag * 16)
        h.access_data(target)  # victim hit, swaps back
        assert h.l1d.contains(target)
        assert not h.victim_d.contains(target)

    def test_instruction_and_data_ports_are_split(self):
        h = make_hierarchy()
        h.access_instruction(0x900)
        assert h.l1i.contains(0x900)
        assert not h.l1d.contains(0x900)

    def test_shared_l2(self):
        """A block brought in by the I-port is an L2 hit for the D-port."""
        h = make_hierarchy()
        h.access_instruction(0x900)
        assert h.access_data(0x900) == 3 + 20


class TestStatsPlumbing:
    def test_memory_access_count(self):
        h = make_hierarchy()
        h.access_data(0x1)
        h.access_data(0x1)
        h.access_instruction(0x2)
        stats = h.stats()
        assert stats.memory_accesses == 2
        assert stats.l1d.accesses == 2
        assert stats.l1d.hits == 1
        assert stats.l1i.accesses == 1

    def test_victim_stats_present_when_enabled(self):
        h = make_hierarchy(victim_entries=4)
        target = 0x40
        h.access_data(target)
        for tag in range(1, 5):
            h.access_data(target + tag * 16)
        h.access_data(target)
        snapshot = h.stats().snapshot()
        assert snapshot["victim_d"]["hits"] == 1

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            LatencyConfig(l1i=-1)


class TestWordDisableLatencyEffect:
    def test_plus_one_cycle_l1(self):
        """Word-disabling's +1 alignment cycle shows up in every L1 hit."""
        lat = LatencyConfig(l1i=4, l1d=4, victim=1, l2=20, memory=255)
        h = MemoryHierarchy(
            SetAssociativeCache(L1), SetAssociativeCache(L1), L2, lat
        )
        h.access_data(0x10)
        assert h.access_data(0x10) == 4
