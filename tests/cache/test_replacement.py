"""Tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_picks_least_recent(self):
        policy = LRUPolicy()
        assert policy.victim([0, 1, 2], last_touch=[5, 3, 9], fill_time=[0, 0, 0]) == 1

    def test_respects_candidates(self):
        policy = LRUPolicy()
        # way 1 has the oldest touch but is not a candidate.
        assert policy.victim([0, 2], last_touch=[5, 1, 9], fill_time=[0, 0, 0]) == 0


class TestFIFO:
    def test_picks_earliest_fill(self):
        policy = FIFOPolicy()
        assert policy.victim([0, 1, 2], last_touch=[1, 1, 1], fill_time=[4, 2, 8]) == 1

    def test_ignores_touches(self):
        policy = FIFOPolicy()
        # way 0 was touched most recently but filled first: still the victim.
        assert policy.victim([0, 1], last_touch=[99, 1], fill_time=[1, 2]) == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(seed=5)
        b = RandomPolicy(seed=5)
        picks_a = [a.victim([0, 1, 2, 3], [0] * 4, [0] * 4) for _ in range(20)]
        picks_b = [b.victim([0, 1, 2, 3], [0] * 4, [0] * 4) for _ in range(20)]
        assert picks_a == picks_b

    def test_only_candidates_picked(self):
        policy = RandomPolicy(seed=1)
        for _ in range(50):
            assert policy.victim([1, 3], [0] * 4, [0] * 4) in (1, 3)

    def test_clone_resets_stream(self):
        policy = RandomPolicy(seed=2)
        first = [policy.victim([0, 1, 2, 3], [0] * 4, [0] * 4) for _ in range(10)]
        clone = policy.clone()
        second = [clone.victim([0, 1, 2, 3], [0] * 4, [0] * 4) for _ in range(10)]
        assert first == second


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("fifo"), FIFOPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("mru")
