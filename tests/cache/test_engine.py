"""Fused engine vs object hierarchy: direct access-stream equivalence.

The pipeline-level golden suite locks end-to-end behaviour; these tests
drive the two paths directly with synthetic access streams and require
identical per-access latencies, statistics, and final contents — for every
replacement policy, with victim caches, prefetchers, disabled ways, and
across a measurement-boundary stats reset.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cache.engine import FusedHierarchy
from repro.cache.hierarchy import LatencyConfig, MemoryHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.faults.geometry import CacheGeometry

L1 = CacheGeometry(size_bytes=2 * 1024, ways=4, block_bytes=64)  # 8 sets
L2 = CacheGeometry(size_bytes=16 * 1024, ways=8, block_bytes=64)  # 32 sets
LAT = LatencyConfig(l1i=3, l1d=3, victim=1, l2=10, memory=50)


def make_hierarchy(
    policy: str = "lru",
    victim_entries: int = 0,
    prefetch_degree: int = 0,
    enabled: np.ndarray | None = None,
) -> MemoryHierarchy:
    return MemoryHierarchy(
        SetAssociativeCache(L1, enabled_ways=enabled, policy=policy, name="l1i", seed=3),
        SetAssociativeCache(L1, enabled_ways=enabled, policy=policy, name="l1d", seed=4),
        SetAssociativeCache(L2, policy=policy, name="l2", seed=5),
        LAT,
        victim_entries_i=victim_entries,
        victim_entries_d=victim_entries,
        prefetch_degree=prefetch_degree,
    )


def access_stream(seed: int, n: int = 3000) -> list[tuple[int, bool, bool]]:
    """(block, is_write, is_instruction) tuples with real locality: a hot
    window plus occasional far jumps, so hits, misses, evictions,
    writebacks, and victim swaps all occur."""
    rng = random.Random(seed)
    stream = []
    hot = 0
    for _ in range(n):
        if rng.random() < 0.1:
            hot = rng.randrange(1 << 18)
        if rng.random() < 0.6:
            block = hot + rng.randrange(16)
        else:
            block = rng.randrange(1 << 18)
        stream.append((block, rng.random() < 0.3, rng.random() < 0.4))
    return stream


def drive_object(hier: MemoryHierarchy, stream) -> list[int]:
    out = []
    for block, is_write, is_instruction in stream:
        if is_instruction:
            out.append(hier.access_instruction(block))
        else:
            out.append(hier.access_data(block, is_write))
    return out


def drive_fused(hier: MemoryHierarchy, stream) -> list[int]:
    fused = FusedHierarchy(hier)
    out = []
    for block, is_write, is_instruction in stream:
        if is_instruction:
            out.append(fused.access_instruction(block))
        else:
            out.append(fused.access_data(block, is_write))
    fused.sync()
    return out


def thinned() -> np.ndarray:
    rng = np.random.default_rng(9)
    enabled = rng.random((L1.num_sets, L1.ways)) > 0.4
    enabled[2, :] = False  # fully disabled set
    enabled[5, :] = False
    enabled[5, 1] = True  # direct-mapped set
    return enabled


CONFIGS = {
    "lru": dict(policy="lru"),
    "fifo": dict(policy="fifo"),
    "random": dict(policy="random"),
    "lru-victim": dict(policy="lru", victim_entries=4),
    "fifo-victim1": dict(policy="fifo", victim_entries=1),
    "random-victim": dict(policy="random", victim_entries=4),
    "lru-prefetch": dict(policy="lru", prefetch_degree=1),
    "lru-prefetch2-victim": dict(policy="lru", prefetch_degree=2, victim_entries=4),
    "lru-thinned": dict(policy="lru", enabled=thinned()),
    "fifo-thinned-victim": dict(policy="fifo", enabled=thinned(), victim_entries=4),
    "random-thinned": dict(policy="random", enabled=thinned()),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_access_stream_equivalence(name):
    kwargs = CONFIGS[name]
    stream = access_stream(seed=hash(name) & 0xFFFF)
    obj = make_hierarchy(**kwargs)
    fus = make_hierarchy(**kwargs)
    lat_obj = drive_object(obj, stream)
    lat_fus = drive_fused(fus, stream)
    assert lat_obj == lat_fus, f"{name}: latency sequences diverged"
    assert obj.stats().snapshot() == fus.stats().snapshot()
    assert obj.l1d.resident_blocks() == fus.l1d.resident_blocks()
    assert obj.l1i.resident_blocks() == fus.l1i.resident_blocks()
    assert obj.l2.resident_blocks() == fus.l2.resident_blocks()


def test_state_is_shared_not_copied():
    """Compilation is zero-copy: accesses through the engine are visible
    to the object cache immediately (contents), and stats after sync."""
    hier = make_hierarchy()
    fused = FusedHierarchy(hier)
    fused.access_data(0x123, False)
    assert hier.l1d.contains(0x123)  # contents shared by reference
    fused.sync()
    assert hier.l1d.stats.misses == 1
    assert hier.dport.memory_accesses == 1


def test_reset_stats_matches_object_reset():
    stream = access_stream(seed=77, n=1500)
    obj = make_hierarchy(victim_entries=4)
    fus = make_hierarchy(victim_entries=4)

    fused = FusedHierarchy(fus)
    for k, (block, is_write, is_instruction) in enumerate(stream):
        if k == 700:
            # Mirror the pipeline's measurement-boundary reset on both.
            for cache in (obj.l1i, obj.l1d, obj.l2):
                cache.stats.reset()
            for victim in (obj.victim_i, obj.victim_d):
                victim.stats.reset()
            obj.iport.memory_accesses = 0
            obj.dport.memory_accesses = 0
            fused.reset_stats()
        if is_instruction:
            obj.access_instruction(block)
            fused.access_instruction(block)
        else:
            obj.access_data(block, is_write)
            fused.access_data(block, is_write)
    fused.sync()
    assert obj.stats().snapshot() == fus.stats().snapshot()


def test_flush_keeps_engine_coherent():
    """flush() mutates the shared lists in place, so an engine compiled
    before the flush sees the invalidation."""
    hier = make_hierarchy()
    fused = FusedHierarchy(hier)
    fused.access_data(0x55, False)
    assert hier.l1d.contains(0x55)
    hier.l1d.flush()
    lat = fused.access_data(0x55, False)
    assert lat > LAT.l1d  # miss again after the flush
