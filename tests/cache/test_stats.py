"""Tests for cache statistics containers."""

import pytest

from repro.cache.stats import CacheStats, HierarchyStats


class TestCacheStats:
    def test_rates_with_zero_accesses(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_rates(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == pytest.approx(0.7)
        assert stats.miss_rate == pytest.approx(0.3)

    def test_reset(self):
        stats = CacheStats(accesses=5, hits=5)
        stats.reset()
        assert stats.accesses == 0
        assert stats.hits == 0

    def test_snapshot_keys(self):
        snapshot = CacheStats(accesses=2, hits=1, misses=1).snapshot()
        for key in ("accesses", "hits", "misses", "hit_rate", "miss_rate"):
            assert key in snapshot
        assert snapshot["hit_rate"] == pytest.approx(0.5)


class TestHierarchyStats:
    def test_snapshot_structure(self):
        stats = HierarchyStats()
        stats.memory_accesses = 42
        snapshot = stats.snapshot()
        assert snapshot["memory_accesses"] == 42
        for level in ("l1i", "l1d", "l2", "victim_i", "victim_d"):
            assert "hit_rate" in snapshot[level]
