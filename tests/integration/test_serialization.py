"""Round-trip tests for fault-map and trace persistence, and the pipeline's
measured-region support."""

import numpy as np
import pytest

from repro.cache.hierarchy import LatencyConfig, MemoryHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.cpu.config import PAPER_PIPELINE
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.faults import CacheGeometry, FaultMap
from repro.workloads.generator import generate_trace


class TestFaultMapPersistence:
    def test_round_trip(self, paper_geometry, tmp_path):
        fmap = FaultMap.generate(paper_geometry, 0.001, seed=5)
        path = str(tmp_path / "map.npz")
        fmap.save(path)
        loaded = FaultMap.load(path)
        assert np.array_equal(loaded.faults, fmap.faults)
        assert loaded.pfail == fmap.pfail
        assert loaded.geometry == fmap.geometry

    def test_round_trip_with_explicit_tag_bits(self, tmp_path):
        geometry = CacheGeometry(size_bytes=4096, ways=4, block_bytes=64, tag_bits=30)
        fmap = FaultMap.generate(geometry, 0.002, seed=1)
        path = str(tmp_path / "map.npz")
        fmap.save(path)
        loaded = FaultMap.load(path)
        assert loaded.geometry.tag_bits == 30
        assert np.array_equal(loaded.faults, fmap.faults)

    def test_loaded_map_usable_by_schemes(self, paper_geometry, tmp_path):
        from repro.core import BlockDisableScheme, VoltageMode

        fmap = FaultMap.generate(paper_geometry, 0.001, seed=9)
        path = str(tmp_path / "map.npz")
        fmap.save(path)
        loaded = FaultMap.load(path)
        original = BlockDisableScheme().configure(paper_geometry, fmap, VoltageMode.LOW)
        reloaded = BlockDisableScheme().configure(paper_geometry, loaded, VoltageMode.LOW)
        assert original.usable_blocks == reloaded.usable_blocks


class TestTracePersistence:
    def test_round_trip(self, tmp_path):
        trace = generate_trace("gzip", 3000, seed=4)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        from repro.cpu.trace import Trace

        loaded = Trace.load(path)
        assert loaded.name == "gzip"
        assert loaded.pc == trace.pc
        assert loaded.iclass == trace.iclass
        assert loaded.mem_addr == trace.mem_addr
        assert loaded.taken == trace.taken

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.cpu.trace import Trace
        from repro.faults import PAPER_L1_GEOMETRY, PAPER_L2_GEOMETRY

        trace = generate_trace("gzip", 3000, seed=4)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)

        def run(t):
            hierarchy = MemoryHierarchy(
                SetAssociativeCache(PAPER_L1_GEOMETRY),
                SetAssociativeCache(PAPER_L1_GEOMETRY),
                PAPER_L2_GEOMETRY,
                LatencyConfig(),
            )
            return OutOfOrderPipeline(PAPER_PIPELINE, hierarchy).run(t)

        assert run(trace).cycles == run(loaded).cycles


class TestMeasuredRegion:
    def make_pipeline(self):
        from repro.faults import PAPER_L1_GEOMETRY, PAPER_L2_GEOMETRY

        hierarchy = MemoryHierarchy(
            SetAssociativeCache(PAPER_L1_GEOMETRY),
            SetAssociativeCache(PAPER_L1_GEOMETRY),
            PAPER_L2_GEOMETRY,
            LatencyConfig(),
        )
        return OutOfOrderPipeline(PAPER_PIPELINE, hierarchy)

    def test_measured_region_reports_fewer_instructions(self):
        trace = generate_trace("gzip", 6000, seed=1)
        result = self.make_pipeline().run(trace, measure_from=2000)
        assert result.instructions == 4000

    def test_measured_cycles_below_total(self):
        trace = generate_trace("gzip", 6000, seed=1)
        full = self.make_pipeline().run(trace)
        region = self.make_pipeline().run(trace, measure_from=2000)
        assert 0 < region.cycles < full.cycles

    def test_warm_measurement_has_higher_ipc(self):
        """Warm caches/predictors: the measured region runs faster per
        instruction than the cold full run."""
        trace = generate_trace("gzip", 20_000, seed=1)
        full = self.make_pipeline().run(trace)
        region = self.make_pipeline().run(trace, measure_from=10_000)
        assert region.ipc > full.ipc

    def test_stats_cover_only_measured_region(self):
        trace = generate_trace("gzip", 6000, seed=1)
        region = self.make_pipeline().run(trace, measure_from=3000)
        accesses = region.hierarchy_stats["l1d"]["accesses"]
        full = self.make_pipeline().run(trace)
        assert accesses < full.hierarchy_stats["l1d"]["accesses"]

    def test_measure_from_zero_is_full_run(self):
        trace = generate_trace("gzip", 3000, seed=1)
        a = self.make_pipeline().run(trace)
        b = self.make_pipeline().run(trace, measure_from=0)
        assert a.cycles == b.cycles

    def test_out_of_range_rejected(self):
        trace = generate_trace("gzip", 100, seed=1)
        with pytest.raises(ValueError):
            self.make_pipeline().run(trace, measure_from=100)
        with pytest.raises(ValueError):
            self.make_pipeline().run(trace, measure_from=-1)
