"""Integration tests pinning the paper's headline numbers.

These are the reproduction's acceptance tests: every quantitative claim the
paper's abstract, Section IV, and Section VI make, checked end-to-end
against this implementation (analytical claims exactly; simulation claims
as shape/ordering, since the substrate is a different simulator — see
DESIGN.md).
"""

import pytest

from repro.analysis import (
    CapacityDistribution,
    expected_faulty_blocks_exact,
    pfail_for_capacity,
    whole_cache_failure_probability,
)
from repro.analysis.victim import paper_victim_analysis
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
)
from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.faults import PAPER_L1_GEOMETRY
from repro.overhead.transistors import OverheadModel


class TestSectionIVClaims:
    def test_275_faults_hit_213_blocks(self):
        assert round(expected_faulty_blocks_exact(512, 537, 275)) == 213

    def test_more_than_half_capacity_below_0_0013(self):
        assert pfail_for_capacity(537, 0.5) == pytest.approx(0.0013, abs=1e-4)

    def test_fig4_mean_58_pct(self):
        dist = CapacityDistribution(512, 537, 0.001)
        assert dist.mean_capacity == pytest.approx(0.58, abs=0.01)

    def test_999_probability_above_half(self):
        dist = CapacityDistribution(512, 537, 0.001)
        assert dist.prob_capacity_above(0.5) >= 0.999

    def test_1_in_1000_caches_unfit_at_0_001(self):
        pwcf = whole_cache_failure_probability(0.001)
        assert pwcf == pytest.approx(1.6e-3, rel=0.5)

    def test_factor_10_increase_at_0_0015(self):
        ratio = whole_cache_failure_probability(0.0015) / whole_cache_failure_probability(0.001)
        assert ratio == pytest.approx(10, rel=0.4)

    def test_mean_6_5_faulty_victim_blocks(self):
        assert paper_victim_analysis(0.001).mean_faulty_entries == pytest.approx(
            6.5, abs=0.2
        )


class TestTableIClaims:
    def test_all_six_rows(self):
        model = OverheadModel(PAPER_L1_GEOMETRY)
        totals = [row.total_transistors for row in model.all_rows()]
        assert totals == [76_800, 126_138, 209_920, 81_920, 164_150, 131_418]

    def test_order_of_magnitude_cheaper(self):
        model = OverheadModel(PAPER_L1_GEOMETRY)
        assert (
            model.word_disable_cache_increase()
            / model.block_disable_cache_increase()
            > 10
        )


@pytest.mark.slow
class TestSectionVIShape:
    """Simulation-based ordering claims on a reduced but meaningful setup:
    six representative benchmarks, three fault maps, 20k instructions."""

    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(
            RunnerSettings(
                n_instructions=20_000,
                n_fault_maps=3,
                benchmarks=("crafty", "gzip", "mcf", "swim", "wupwise", "parser"),
            )
        )

    def test_scheme_ordering(self, runner):
        """word-disable < block-disable < block-disable+V$ on average —
        the paper's central result."""
        word = runner.normalized_series(LV_WORD, LV_BASELINE)
        block = runner.normalized_series(LV_BLOCK, LV_BASELINE)
        block_v = runner.normalized_series(LV_BLOCK_V10, LV_BASELINE)
        assert word.mean_average < block.mean_average < block_v.mean_average

    def test_loss_magnitudes_in_paper_range(self, runner):
        """Average penalties in the paper's neighbourhood (11.2% / 8.3% /
        5.3%); we accept generous bands since the benchmark subset is small."""
        word = runner.normalized_series(LV_WORD, LV_BASELINE)
        block_v = runner.normalized_series(LV_BLOCK_V10, LV_BASELINE)
        assert 0.04 < word.mean_penalty < 0.25
        assert block_v.mean_penalty < word.mean_penalty
        assert block_v.mean_penalty < 0.12

    def test_victim_cache_raises_minimum(self, runner):
        """Section VI-A: the victim cache fixes block-disabling's worst-case
        (minimum) performance."""
        block = runner.normalized_series(LV_BLOCK, LV_BASELINE)
        block_v = runner.normalized_series(LV_BLOCK_V10, LV_BASELINE)
        for without, with_v in zip(block.minimum, block_v.minimum):
            assert with_v >= without - 0.02

    def test_streaming_benchmarks_insensitive(self, runner):
        """swim/mcf: compulsory/capacity-bound traffic means every scheme
        sits close to the baseline."""
        word = runner.normalized_series(LV_WORD, LV_BASELINE)
        for bench, value in zip(word.benchmarks, word.average):
            if bench in ("swim", "mcf"):
                assert value > 0.93
