"""Golden simulation scenarios: the bit-identity contract of the simulator.

Each scenario builds a complete (pipeline config, memory hierarchy, trace,
measured region) quadruple covering every behavioural corner the fused
engine must reproduce exactly: all disabling schemes at both voltages,
victim caches of several sizes, prefetching, every replacement policy,
fault-thinned and fully-disabled sets, and non-Table-II pipeline widths
(which exercise the generic min-scan fallbacks).

``golden_sim.json`` locks the cycle counts, branch statistics, and full
hierarchy stats these scenarios produced on the pre-engine object path.
``test_golden_sim.py`` asserts that both the object path and the fused
engine still reproduce them bit-for-bit.

Regenerate (only when the simulator's bits change *on purpose*)::

    PYTHONPATH=src python tests/integration/golden_scenarios.py --regen
"""

from __future__ import annotations

import json
import os
from typing import Callable

import numpy as np

from repro.cache.hierarchy import LatencyConfig, MemoryHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.core import SCHEMES
from repro.core.schemes import VoltageMode
from repro.cpu.config import (
    HIGH_VOLTAGE,
    L1_GEOMETRY,
    L2_GEOMETRY,
    LOW_VOLTAGE,
    PAPER_PIPELINE,
    OperatingPoint,
    PipelineConfig,
)
from repro.cpu.pipeline import OutOfOrderPipeline, SimResult
from repro.cpu.trace import Trace
from repro.faults.fault_map import FaultMap, sample_fault_map_pairs
from repro.faults.geometry import CacheGeometry
from repro.workloads.generator import generate_trace

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_sim.json")

#: Instructions per scenario trace; the measured region starts after the
#: warmup prefix so the mid-run statistics reset is exercised too.
TRACE_LENGTH = 6_000
MEASURE_FROM = 1_500

# Small geometries for the direct (non-scheme) scenarios: few sets means
# heavy conflict pressure, so every path (evictions, victim swaps,
# writebacks, policy decisions) fires within a short trace.
SMALL_L1 = CacheGeometry(size_bytes=4 * 1024, ways=4, block_bytes=64)
SMALL_L2 = CacheGeometry(size_bytes=32 * 1024, ways=8, block_bytes=64)
SMALL_LATENCIES = LatencyConfig(l1i=3, l1d=3, victim=1, l2=12, memory=90)

#: Non-Table-II widths: exercises the generic (non-unrolled) FU/port scans.
ODD_PIPELINE = PipelineConfig(
    issue_width=3,
    int_alu_units=2,
    int_mul_units=2,
    fp_alu_units=2,
    fp_mul_units=1,
    commit_width=3,
)


def _traces() -> dict[str, Trace]:
    return {
        "gzip": generate_trace("gzip", TRACE_LENGTH, seed=11),
        "applu": generate_trace("applu", TRACE_LENGTH, seed=12),
    }


def _scheme_hierarchy(
    scheme_name: str,
    voltage: VoltageMode,
    victim_entries: int,
    imap: FaultMap | None,
    dmap: FaultMap | None,
) -> MemoryHierarchy:
    """Mirror of ``ExperimentRunner._simulate``'s construction."""
    scheme = SCHEMES.create(scheme_name)
    operating: OperatingPoint = (
        LOW_VOLTAGE if voltage is VoltageMode.LOW else HIGH_VOLTAGE
    )
    if voltage is VoltageMode.LOW and imap is None:
        imap = dmap = FaultMap.empty(L1_GEOMETRY)
    cfg_i = scheme.configure(L1_GEOMETRY, imap, voltage)
    cfg_d = scheme.configure(L1_GEOMETRY, dmap, voltage)
    latencies = operating.latencies(
        operating.l1_base_latency + cfg_i.latency_adder,
        operating.l1_base_latency + cfg_d.latency_adder,
    )
    return MemoryHierarchy(
        cfg_i.build_cache("l1i", seed=2010),
        cfg_d.build_cache("l1d", seed=2010),
        L2_GEOMETRY,
        latencies,
        victim_entries_i=victim_entries,
        victim_entries_d=victim_entries,
    )


def _thinned_matrix(seed: int) -> np.ndarray:
    """Enabled-way matrix with heavy thinning, one fully-disabled set and
    one single-way set — the block-disabling worst cases."""
    rng = np.random.default_rng(seed)
    enabled = rng.random((SMALL_L1.num_sets, SMALL_L1.ways)) > 0.35
    enabled[3, :] = False  # fully-disabled set: fills bypass
    enabled[7, :] = False
    enabled[7, 2] = True  # direct-mapped set
    return enabled


def _small_hierarchy(
    policy: str = "lru",
    enabled_i: np.ndarray | None = None,
    enabled_d: np.ndarray | None = None,
    victim_entries: int = 0,
    prefetch_degree: int = 0,
    l2_policy: str | None = None,
) -> MemoryHierarchy:
    l1i = SetAssociativeCache(SMALL_L1, enabled_ways=enabled_i, policy=policy, name="l1i", seed=5)
    l1d = SetAssociativeCache(SMALL_L1, enabled_ways=enabled_d, policy=policy, name="l1d", seed=6)
    l2 = SetAssociativeCache(SMALL_L2, policy=l2_policy or policy, name="l2", seed=7)
    return MemoryHierarchy(
        l1i,
        l1d,
        l2,
        SMALL_LATENCIES,
        victim_entries_i=victim_entries,
        victim_entries_d=victim_entries,
    )


def scenarios() -> list[tuple[str, PipelineConfig, Callable[[], MemoryHierarchy], str]]:
    """(name, pipeline config, hierarchy factory, trace name) quadruples."""
    pairs = list(sample_fault_map_pairs(L1_GEOMETRY, 0.001, 2, seed=77))
    # pfail=0.002 disables ~2/3 of blocks (1 - (1-p)^537): every set keeps
    # a different handful of usable ways — variable associativity at scale.
    heavy_i = FaultMap.generate(L1_GEOMETRY, 0.002, seed=78)
    heavy_d = FaultMap.generate(L1_GEOMETRY, 0.002, seed=79)
    LOW, HIGH = VoltageMode.LOW, VoltageMode.HIGH
    entries: list[tuple[str, PipelineConfig, Callable[[], MemoryHierarchy], str]] = []

    def scheme(name, scheme_name, voltage, victim, imap, dmap, trace="gzip"):
        entries.append(
            (
                name,
                PAPER_PIPELINE,
                lambda: _scheme_hierarchy(scheme_name, voltage, victim, imap, dmap),
                trace,
            )
        )

    # ----- Table III rows (paper geometry) ---------------------------------
    scheme("lv-baseline", "baseline", LOW, 0, None, None)
    scheme("lv-baseline-v16", "baseline", LOW, 16, None, None, trace="applu")
    scheme("lv-word", "word-disable", LOW, 0, None, None)
    scheme("lv-word-v16", "word-disable", LOW, 16, None, None)
    scheme("lv-block-m0", "block-disable", LOW, 0, pairs[0].icache, pairs[0].dcache)
    scheme(
        "lv-block-v10-m0",
        "block-disable",
        LOW,
        16,
        pairs[0].icache,
        pairs[0].dcache,
        trace="applu",
    )
    scheme("lv-block-v6-m1", "block-disable", LOW, 8, pairs[1].icache, pairs[1].dcache)
    scheme(
        "lv-incremental-m0",
        "incremental-word-disable",
        LOW,
        0,
        pairs[0].icache,
        pairs[0].dcache,
    )
    scheme("hv-baseline", "baseline", HIGH, 0, None, None, trace="applu")
    scheme("hv-block-v16", "block-disable", HIGH, 16, None, None)
    # Far beyond the paper's pfail: many thinned sets in one map.
    scheme("lv-block-heavy", "block-disable", LOW, 8, heavy_i, heavy_d)

    # ----- direct stress scenarios (small geometry) ------------------------
    entries.append(
        ("policy-fifo", PAPER_PIPELINE, lambda: _small_hierarchy(policy="fifo"), "gzip")
    )
    entries.append(
        (
            "policy-random",
            PAPER_PIPELINE,
            lambda: _small_hierarchy(policy="random"),
            "gzip",
        )
    )
    entries.append(
        (
            "prefetch-d1",
            PAPER_PIPELINE,
            lambda: MemoryHierarchy(
                SetAssociativeCache(SMALL_L1, name="l1i"),
                SetAssociativeCache(SMALL_L1, name="l1d"),
                SMALL_L2,
                SMALL_LATENCIES,
                prefetch_degree=1,
            ),
            "gzip",
        )
    )
    entries.append(
        (
            "prefetch-d2-victim4",
            PAPER_PIPELINE,
            lambda: MemoryHierarchy(
                SetAssociativeCache(SMALL_L1, name="l1i"),
                SetAssociativeCache(SMALL_L1, name="l1d"),
                SMALL_L2,
                SMALL_LATENCIES,
                victim_entries_i=4,
                victim_entries_d=4,
                prefetch_degree=2,
            ),
            "applu",
        )
    )
    entries.append(
        (
            "thinned-victim4",
            PAPER_PIPELINE,
            lambda: _small_hierarchy(
                enabled_i=_thinned_matrix(21),
                enabled_d=_thinned_matrix(22),
                victim_entries=4,
            ),
            "gzip",
        )
    )
    entries.append(
        (
            "thinned-random",
            PAPER_PIPELINE,
            lambda: _small_hierarchy(
                policy="random",
                enabled_i=_thinned_matrix(23),
                enabled_d=_thinned_matrix(24),
            ),
            "applu",
        )
    )
    entries.append(
        (
            "victim1-fifo",
            PAPER_PIPELINE,
            lambda: _small_hierarchy(policy="fifo", victim_entries=1),
            "applu",
        )
    )
    entries.append(
        ("odd-widths", ODD_PIPELINE, lambda: _small_hierarchy(victim_entries=4), "gzip")
    )
    return entries


def run_scenario(
    pipeline_config: PipelineConfig,
    hierarchy: MemoryHierarchy,
    trace: Trace,
    engine: str | None = None,
) -> SimResult:
    """Simulate one scenario; ``engine=None`` uses the pipeline default."""
    kwargs = {} if engine is None else {"engine": engine}
    pipeline = OutOfOrderPipeline(pipeline_config, hierarchy, **kwargs)
    return pipeline.run(trace, measure_from=MEASURE_FROM)


def result_record(result: SimResult) -> dict:
    return {
        "benchmark": result.benchmark,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "branch_mispredictions": result.branch_mispredictions,
        "branch_predictions": result.branch_predictions,
        "hierarchy_stats": result.hierarchy_stats,
    }


def run_all(engine: str | None = None) -> dict[str, dict]:
    traces = _traces()
    records: dict[str, dict] = {}
    for name, pipeline_config, make_hierarchy, trace_name in scenarios():
        result = run_scenario(
            pipeline_config, make_hierarchy(), traces[trace_name], engine=engine
        )
        records[name] = result_record(result)
    return records


def load_golden() -> dict[str, dict]:
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--regen", action="store_true", help="rewrite golden_sim.json"
    )
    parser.add_argument(
        "--engine",
        default=None,
        help="engine to regenerate with (default: pipeline default)",
    )
    args = parser.parse_args()
    records = run_all(engine=args.engine)
    if args.regen:
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            json.dump(records, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(records)} scenarios to {GOLDEN_PATH}")
    else:
        print(json.dumps(records, indent=1, sort_keys=True))


if __name__ == "__main__":
    main()
