"""Table II and Table III constants, asserted against the paper's text."""

import pytest

from repro.cpu.config import (
    HIGH_VOLTAGE,
    L1_GEOMETRY,
    L2_GEOMETRY,
    LOW_VOLTAGE,
    PAPER_PIPELINE,
    VICTIM_ENTRIES,
    VICTIM_ENTRIES_6T_LOW_VOLTAGE,
    OperatingPoint,
    PipelineConfig,
)


class TestTableII:
    """Parameters constant for all configurations."""

    def test_pipeline_depth(self):
        assert PAPER_PIPELINE.pipeline_depth == 15

    def test_widths(self):
        # "Fetch/Decode/Issue/Commit up to 4/4/6/4 instr. per cycle"
        assert PAPER_PIPELINE.fetch_width == 4
        assert PAPER_PIPELINE.decode_width == 4
        assert PAPER_PIPELINE.issue_width == 6
        assert PAPER_PIPELINE.commit_width == 4

    def test_issue_queues(self):
        # "Issue Queue 40 INT entries, 20 FP entries"
        assert PAPER_PIPELINE.iq_int_entries == 40
        assert PAPER_PIPELINE.iq_fp_entries == 20

    def test_functional_units(self):
        # "4 INT ALUs, 4 INT mult/div, 1 FP ALUs, 1 FP mult/div"
        assert PAPER_PIPELINE.int_alu_units == 4
        assert PAPER_PIPELINE.int_mul_units == 4
        assert PAPER_PIPELINE.fp_alu_units == 1
        assert PAPER_PIPELINE.fp_mul_units == 1

    def test_reorder_buffer(self):
        assert PAPER_PIPELINE.rob_entries == 128

    def test_front_end(self):
        # "RAS 16 entries; 8 KB gshare (15 bits history)"
        assert PAPER_PIPELINE.ras_entries == 16
        assert PAPER_PIPELINE.gshare_history_bits == 15

    def test_l2(self):
        # "2 MB, 8-way, 64 B blocks, 20-cycle hit latency"
        assert L2_GEOMETRY.size_bytes == 2 * 1024 * 1024
        assert L2_GEOMETRY.ways == 8
        assert L2_GEOMETRY.block_bytes == 64
        assert HIGH_VOLTAGE.l2_latency == 20
        assert LOW_VOLTAGE.l2_latency == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(commit_width=0)


class TestTableIII:
    """Configuration-dependent parameters."""

    def test_high_voltage_point(self):
        # "3GHz, 255-cycle memory"
        assert HIGH_VOLTAGE.frequency_hz == pytest.approx(3.0e9)
        assert HIGH_VOLTAGE.memory_latency == 255

    def test_low_voltage_point(self):
        # "600MHz, 51-cycle memory"
        assert LOW_VOLTAGE.frequency_hz == pytest.approx(600e6)
        assert LOW_VOLTAGE.memory_latency == 51

    def test_memory_wall_clock_invariant(self):
        """The memory's absolute time is constant; only cycles scale:
        255 / 3GHz == 51 / 600MHz."""
        hv = HIGH_VOLTAGE.memory_latency / HIGH_VOLTAGE.frequency_hz
        lv = LOW_VOLTAGE.memory_latency / LOW_VOLTAGE.frequency_hz
        assert hv == pytest.approx(lv)

    def test_l1_base_latency(self):
        # "32 KB, 8-way, 64 B, 3-cycle latency"
        assert HIGH_VOLTAGE.l1_base_latency == 3
        assert L1_GEOMETRY.size_bytes == 32 * 1024
        assert L1_GEOMETRY.ways == 8
        assert L1_GEOMETRY.block_bytes == 64

    def test_victim_cache(self):
        # "16 entries / 1 cycle"; 6T variant keeps 8 at low voltage.
        assert VICTIM_ENTRIES == 16
        assert VICTIM_ENTRIES_6T_LOW_VOLTAGE == 8
        assert HIGH_VOLTAGE.victim_latency == 1

    def test_latency_overrides(self):
        lat = LOW_VOLTAGE.latencies(4, 4)  # the word-disable row
        assert lat.l1i == 4
        assert lat.l1d == 4
        assert lat.memory == 51

    def test_operating_point_defaults(self):
        point = OperatingPoint(name="x", frequency_hz=1e9, memory_latency=100)
        assert point.l1i() == 3
        assert point.l1d(5) == 5
