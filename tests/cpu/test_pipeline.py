"""Tests for the one-pass out-of-order timing model.

These validate the structural limits (widths, ROB, FUs), latency
propagation through dependence chains, and the cache/branch interactions
the paper's comparisons rest on.
"""

import pytest

from repro.cache.hierarchy import LatencyConfig, MemoryHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.cpu.config import PipelineConfig
from repro.cpu.isa import InstrClass
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.cpu.trace import Trace
from repro.faults import CacheGeometry

L1 = CacheGeometry(size_bytes=32 * 1024, ways=8, block_bytes=64)
L2 = CacheGeometry(size_bytes=256 * 1024, ways=8, block_bytes=64)


def make_pipeline(l1_latency: int = 3, victim: int = 0) -> OutOfOrderPipeline:
    lat = LatencyConfig(l1i=l1_latency, l1d=l1_latency, victim=1, l2=20, memory=100)
    hierarchy = MemoryHierarchy(
        SetAssociativeCache(L1, name="l1i"),
        SetAssociativeCache(L1, name="l1d"),
        L2,
        lat,
        victim_entries_i=victim,
        victim_entries_d=victim,
    )
    return OutOfOrderPipeline(PipelineConfig(), hierarchy)


def alu_trace(n: int, independent: bool = True) -> Trace:
    """ALU-only trace looping through a small code region (so compulsory
    I-cache misses amortise away, as they do in real loopy programs)."""
    trace = Trace(name="alu")
    for i in range(n):
        if independent:
            dest = 1 + i % 20
            src = 25
        else:
            dest = 1
            src = 1  # serial chain
        trace.append(0x1000 + 4 * (i % 16), InstrClass.INT_ALU, src1=src, dest=dest)
    return trace


class TestStructuralLimits:
    def test_empty_trace(self):
        result = make_pipeline().run(Trace())
        assert result.cycles == 0
        assert result.instructions == 0

    def test_ipc_bounded_by_commit_width(self):
        result = make_pipeline().run(alu_trace(4000, independent=True))
        assert result.ipc <= 4.0 + 1e-9

    def test_independent_alus_achieve_high_ipc(self):
        result = make_pipeline().run(alu_trace(4000, independent=True))
        assert result.ipc > 2.0

    def test_serial_chain_is_ipc_one(self):
        """A fully serial dependence chain cannot exceed 1 ALU op/cycle."""
        result = make_pipeline().run(alu_trace(2000, independent=False))
        assert result.ipc == pytest.approx(1.0, abs=0.15)

    def test_fp_alu_structural_hazard(self):
        """One FP ALU (Table II): independent FP adds with 4-cycle latency
        still issue at most one per cycle."""
        trace = Trace(name="fp")
        for i in range(2000):
            trace.append(
                0x1000 + 4 * (i % 16), InstrClass.FP_ALU, src1=57, dest=33 + i % 20
            )
        result = make_pipeline().run(trace)
        assert result.ipc <= 1.0 + 1e-9
        assert result.ipc > 0.8

    def test_int_mul_latency_chain(self):
        """Serial 7-cycle multiplies: IPC ~ 1/7."""
        trace = Trace(name="mul")
        for i in range(1000):
            trace.append(0x1000 + 4 * (i % 16), InstrClass.INT_MUL, src1=1, dest=1)
        result = make_pipeline().run(trace)
        assert result.ipc == pytest.approx(1 / 7, rel=0.2)

    def test_cycles_monotone_in_trace_length(self):
        short = make_pipeline().run(alu_trace(500))
        longer = make_pipeline().run(alu_trace(1000))
        assert longer.cycles > short.cycles


class TestMemoryBehaviour:
    def test_load_chain_pays_l1_latency(self):
        """Serial dependent loads that hit in L1 cost ~l1_latency each."""
        trace = Trace(name="loads")
        for i in range(1000):
            trace.append(
                0x1000 + 4 * (i % 16), InstrClass.LOAD, mem_addr=0x8000, src1=4, dest=4
            )
        result = make_pipeline(l1_latency=3).run(trace)
        assert result.ipc == pytest.approx(1 / 3, rel=0.2)

    def test_extra_l1_cycle_slows_load_chains(self):
        """The word-disable +1 L1 cycle must show up in load-to-use chains
        (4-cycle vs 3-cycle serial loads)."""
        trace = Trace(name="loads")
        for i in range(1000):
            trace.append(
                0x1000 + 4 * (i % 16), InstrClass.LOAD, mem_addr=0x8000, src1=4, dest=4
            )
        fast = make_pipeline(l1_latency=3).run(trace)
        slow = make_pipeline(l1_latency=4).run(trace)
        assert slow.cycles / fast.cycles == pytest.approx(4 / 3, rel=0.1)

    def test_independent_misses_overlap(self):
        """Memory-level parallelism: independent misses to distinct blocks
        overlap, so total cycles are far below misses x memory latency."""
        trace = Trace(name="mlp")
        for i in range(512):
            trace.append(
                0x1000 + 4 * (i % 16),
                InstrClass.LOAD,
                mem_addr=0x100000 + i * 4096,
                src1=25,
                dest=1 + i % 20,
            )
        result = make_pipeline().run(trace)
        assert result.cycles < 512 * 100 / 4

    def test_store_does_not_stall_chain(self):
        """Stores retire via the store buffer; a store between ALU ops must
        not inject memory latency into the chain."""
        trace = Trace(name="stores")
        for i in range(500):
            trace.append(0x1000 + 8 * (i % 8), InstrClass.INT_ALU, src1=1, dest=1)
            trace.append(
                0x1004 + 8 * (i % 8),
                InstrClass.STORE,
                mem_addr=0x200000 + i * 4096,
                src1=25,
                src2=1,
            )
        result = make_pipeline().run(trace)
        assert result.ipc > 1.0


class TestBranchBehaviour:
    def test_mispredictions_cost_cycles(self):
        """An unpredictable branch stream runs slower than a biased one."""
        import random

        rng = random.Random(0)

        def branch_trace(random_outcomes: bool) -> Trace:
            trace = Trace(name="br")
            for i in range(4000):
                trace.append(0x1000 + 8 * (i % 4), InstrClass.INT_ALU, src1=25, dest=1)
                taken = rng.random() < 0.5 if random_outcomes else True
                trace.append(0x1004 + 8 * (i % 4), InstrClass.BRANCH, src1=1, taken=taken)
            return trace

        predictable = make_pipeline().run(branch_trace(False))
        unpredictable = make_pipeline().run(branch_trace(True))
        assert unpredictable.cycles > predictable.cycles * 1.3
        assert unpredictable.misprediction_rate > 0.2
        assert predictable.misprediction_rate < 0.05

    def test_calls_and_returns_use_ras(self):
        trace = Trace(name="callret")
        pc = 0x1000
        for _ in range(200):
            trace.append(pc, InstrClass.CALL, taken=True)
            trace.append(0x9000, InstrClass.INT_ALU, src1=25, dest=1)
            trace.append(0x9004, InstrClass.RETURN, taken=True)
            trace.append(pc + 4, InstrClass.INT_ALU, src1=25, dest=2)
            pc += 8
        result = make_pipeline().run(trace)
        # Well-nested call/return pairs: the RAS predicts returns correctly.
        assert result.branch_mispredictions == 0

    def test_results_are_deterministic(self):
        a = make_pipeline().run(alu_trace(2000))
        b = make_pipeline().run(alu_trace(2000))
        assert a.cycles == b.cycles


class TestSimResult:
    def test_speedup_over(self):
        fast = make_pipeline(l1_latency=3).run(alu_trace(1000))
        slow = make_pipeline(l1_latency=4).run(alu_trace(1000))
        assert slow.speedup_over(fast) <= 1.0

    def test_speedup_requires_same_trace_length(self):
        a = make_pipeline().run(alu_trace(100))
        b = make_pipeline().run(alu_trace(200))
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_hierarchy_stats_attached(self):
        result = make_pipeline().run(alu_trace(100))
        assert "l1i" in result.hierarchy_stats


class TestIssueQueueLimit:
    def test_fp_queue_occupancy_stalls_dispatch(self):
        """20 FP IQ entries (Table II): a long run of FP ops dependent on
        one slow producer fills the queue; independent INT work behind it
        must still retire no faster than the queue drains."""
        trace = Trace(name="iqfull")
        # One slow multiply chain the FP adds depend on.
        trace.append(0x1000, InstrClass.FP_MUL, src1=57, dest=40)
        for i in range(64):  # > 20 FP queue entries
            trace.append(
                0x1004 + 4 * (i % 8), InstrClass.FP_ALU, src1=40, dest=41 + i % 8
            )
        result = make_pipeline().run(trace)
        # All 64 FP adds wait on the multiply, drain through 1 FP ALU:
        # at least ~64 cycles beyond the producer.
        assert result.cycles > 64

    def test_rob_limit_binds(self):
        """A load miss at the head of the ROB stalls dispatch of the
        129th younger instruction (128-entry ROB)."""
        trace = Trace(name="robfull")
        trace.append(0x1000, InstrClass.LOAD, mem_addr=0x900000, src1=25, dest=1)
        for i in range(300):
            trace.append(0x1004 + 4 * (i % 8), InstrClass.INT_ALU, src1=25, dest=2 + i % 20)
        result = make_pipeline().run(trace)
        # The miss costs ~100 cycles; with a 128-entry ROB the first ~127
        # ALUs dispatch behind it but the rest wait for the load to commit.
        assert result.cycles > 100
