"""Tests for instruction classes and the trace container."""

import numpy as np
import pytest

from repro.cpu.isa import (
    EXECUTION_LATENCY,
    FU_OF_CLASS,
    NO_REGISTER,
    FUPool,
    InstrClass,
)
from repro.cpu.trace import Trace


class TestInstrClass:
    def test_memory_classes(self):
        assert InstrClass.LOAD.is_memory
        assert InstrClass.STORE.is_memory
        assert not InstrClass.INT_ALU.is_memory

    def test_control_classes(self):
        for cls in (InstrClass.BRANCH, InstrClass.CALL, InstrClass.RETURN):
            assert cls.is_control
        assert not InstrClass.LOAD.is_control

    def test_fp_queue_residency(self):
        assert InstrClass.FP_ALU.uses_fp_queue
        assert InstrClass.FP_MUL.uses_fp_queue
        assert not InstrClass.LOAD.uses_fp_queue

    def test_every_class_has_latency_and_fu(self):
        for cls in InstrClass:
            assert cls in EXECUTION_LATENCY
            assert cls in FU_OF_CLASS

    def test_memory_classes_use_int_alu_agus(self):
        assert FU_OF_CLASS[InstrClass.LOAD] is FUPool.INT_ALU
        assert FU_OF_CLASS[InstrClass.STORE] is FUPool.INT_ALU

    def test_int_mul_slower_than_alu(self):
        assert EXECUTION_LATENCY[InstrClass.INT_MUL] > EXECUTION_LATENCY[InstrClass.INT_ALU]


class TestTrace:
    def make_small_trace(self) -> Trace:
        trace = Trace(name="t")
        trace.append(0x100, InstrClass.INT_ALU, src1=1, src2=2, dest=3)
        trace.append(0x104, InstrClass.LOAD, mem_addr=0x8000, src1=3, dest=4)
        trace.append(0x108, InstrClass.STORE, mem_addr=0x8008, src1=3, src2=4)
        trace.append(0x10C, InstrClass.BRANCH, src1=4, taken=True)
        return trace

    def test_len(self):
        assert len(self.make_small_trace()) == 4

    def test_validate_accepts_good_trace(self):
        self.make_small_trace().validate()

    def test_validate_rejects_memory_without_address(self):
        trace = Trace()
        trace.append(0, InstrClass.LOAD, mem_addr=-1)
        with pytest.raises(ValueError):
            trace.validate()

    def test_validate_rejects_address_on_alu(self):
        trace = Trace()
        trace.append(0, InstrClass.INT_ALU, mem_addr=0x100)
        with pytest.raises(ValueError):
            trace.validate()

    def test_validate_rejects_ragged_columns(self):
        trace = self.make_small_trace()
        trace.taken.pop()
        with pytest.raises(ValueError):
            trace.validate()

    def test_class_mix(self):
        mix = self.make_small_trace().class_mix()
        assert mix["load"] == pytest.approx(0.25)
        assert mix["branch"] == pytest.approx(0.25)

    def test_class_mix_empty(self):
        assert Trace().class_mix() == {}

    def test_footprints(self):
        trace = self.make_small_trace()
        assert trace.memory_footprint_bytes() == 64  # 0x8000 and 0x8008 share a block
        assert trace.code_footprint_bytes() == 64

    def test_numpy_round_trip(self):
        trace = self.make_small_trace()
        arrays = trace.to_arrays()
        back = Trace.from_arrays(arrays, name="t")
        assert back.pc == trace.pc
        assert back.iclass == trace.iclass
        assert back.mem_addr == trace.mem_addr
        assert back.taken == trace.taken

    def test_no_register_constant(self):
        trace = Trace()
        trace.append(0, InstrClass.INT_ALU)
        assert trace.src1[0] == NO_REGISTER
        assert trace.dest[0] == NO_REGISTER
