"""Lane-batched execution: equivalence, fallbacks, and state write-back.

The batched engine's contract is bit-identity with N sequential fused
runs — cycles, every statistic, and the hierarchy state left behind.
These tests drive heterogeneous lane mixes (different fault maps,
different victim sizings), the warmup boundary, the eligibility
fallbacks, and post-batch warm reuse.
"""

from __future__ import annotations

import pytest

from repro.cpu.pipeline import OutOfOrderPipeline
from repro.experiments.configs import (
    HV_BASELINE,
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V6,
    LV_BLOCK_V10,
    LV_INCREMENTAL,
    LV_WORD,
)
from repro.experiments.runner import ExperimentRunner, RunnerSettings

SETTINGS = RunnerSettings(
    n_instructions=4_000,
    warmup_instructions=1_000,
    n_fault_maps=4,
    benchmarks=("gzip", "applu"),
)
WARMUP = SETTINGS.warmup_instructions


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(SETTINGS)


def _sequential(runner, config, indices, benchmark="gzip"):
    trace = runner.trace(benchmark)
    return [
        runner.build_pipeline(config, m).run(trace, measure_from=WARMUP)
        for m in indices
    ]


def _batched(runner, config, indices, benchmark="gzip", **kwargs):
    trace = runner.trace(benchmark)
    pipelines = [runner.build_pipeline(config, m) for m in indices]
    return OutOfOrderPipeline.run_batch(
        pipelines, trace, measure_from=WARMUP, **kwargs
    )


@pytest.mark.parametrize(
    "config", [LV_BLOCK, LV_BLOCK_V6, LV_BLOCK_V10, LV_INCREMENTAL]
)
def test_lanes_match_sequential_runs(runner, config):
    indices = range(SETTINGS.n_fault_maps)
    assert _batched(runner, config, indices) == _sequential(
        runner, config, indices
    )


def test_single_lane_forced_through_vector_path(runner):
    """min_lanes=1 pushes even a singleton batch down the vectorised
    path (the default falls back for tiny batches)."""
    expected = _sequential(runner, LV_BLOCK, [2])
    assert _batched(runner, LV_BLOCK, [2], min_lanes=1) == expected


def test_mixed_victim_sizes_batch_vectorised(runner):
    """Lanes with different victim sizings (0/8/16 entries) pad to one
    slot axis and batch as a single vectorised group — bit-identical to
    their sequential runs."""
    trace = runner.trace("gzip")
    pipelines = [
        runner.build_pipeline(LV_BLOCK, 0),
        runner.build_pipeline(LV_BLOCK_V6, 0),
        runner.build_pipeline(LV_BLOCK_V6, 1),
        runner.build_pipeline(LV_BLOCK_V10, 0),
        runner.build_pipeline(LV_BLOCK_V10, 1),
    ]
    assert OutOfOrderPipeline._can_run_batch(pipelines)
    results = OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=WARMUP)
    assert results[0] == _sequential(runner, LV_BLOCK, [0])[0]
    assert results[1:3] == _sequential(runner, LV_BLOCK_V6, [0, 1])
    assert results[3:] == _sequential(runner, LV_BLOCK_V10, [0, 1])


def test_mixed_latencies_fall_back(runner):
    """Word-disabling's +1-cycle L1 makes its lanes latency-incompatible
    with the baseline; the batch must fall back, not mis-share state."""
    trace = runner.trace("gzip")
    pipelines = [
        runner.build_pipeline(LV_BASELINE, None),
        runner.build_pipeline(LV_WORD, None),
    ]
    assert not OutOfOrderPipeline._can_run_batch(pipelines)
    results = OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=WARMUP)
    assert results[0] == _sequential(runner, LV_BASELINE, [None])[0]
    assert results[1] == _sequential(runner, LV_WORD, [None])[0]


def test_fault_disabled_l2_falls_back(runner):
    """The bulk L2 refill has no fill-bypass port, so hierarchies with a
    fault-disabled L2 must take the sequential fallback and still match
    per-lane runs exactly."""
    import numpy as np

    from repro.cache.hierarchy import MemoryHierarchy
    from repro.cache.set_assoc import SetAssociativeCache
    from repro.cpu.config import L1_GEOMETRY, L2_GEOMETRY, LOW_VOLTAGE

    trace = runner.trace("gzip")

    def build():
        rng = np.random.default_rng(3)
        enabled = rng.random((L2_GEOMETRY.num_sets, L2_GEOMETRY.ways)) > 0.3
        hierarchy = MemoryHierarchy(
            SetAssociativeCache(L1_GEOMETRY, name="l1i"),
            SetAssociativeCache(L1_GEOMETRY, name="l1d"),
            SetAssociativeCache(L2_GEOMETRY, enabled_ways=enabled, name="l2"),
            LOW_VOLTAGE.latencies(),
        )
        return OutOfOrderPipeline(runner.pipeline_config, hierarchy)

    pipelines = [build(), build()]
    assert not OutOfOrderPipeline._can_run_batch(pipelines)
    results = OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=WARMUP)
    assert results[0] == build().run(trace, measure_from=WARMUP)
    assert results[0] == results[1]


def test_reused_pipeline_falls_back(runner):
    trace = runner.trace("gzip")
    warm = runner.build_pipeline(LV_BLOCK, 0)
    warm.run(trace, measure_from=WARMUP)
    fresh = runner.build_pipeline(LV_BLOCK, 1)
    assert not OutOfOrderPipeline._can_run_batch([warm, fresh])


def test_empty_batch():
    assert OutOfOrderPipeline.run_batch([], None) == []


def test_measure_from_zero_and_validation(runner):
    trace = runner.trace("applu")
    pipelines = [runner.build_pipeline(LV_BLOCK, m) for m in range(2)]
    cold = OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=0)
    expected = [
        runner.build_pipeline(LV_BLOCK, m).run(trace, measure_from=0)
        for m in range(2)
    ]
    assert cold == expected
    with pytest.raises(ValueError):
        OutOfOrderPipeline._run_lanes(
            [runner.build_pipeline(LV_BLOCK, m) for m in range(2)],
            trace,
            len(trace),
        )


def test_mixed_scheme_lanes_batch_vectorised(runner):
    """Lanes need not share a configuration: the fault-free baseline and
    block-disabling fault maps carry equal batch keys (same latencies,
    geometries, victim sizing), so the mega planner may drive them as
    one vectorised pass — bit-identical to their sequential runs."""
    trace = runner.trace("gzip")
    pipelines = [
        runner.build_pipeline(LV_BASELINE, None),
        runner.build_pipeline(LV_BLOCK, 0),
        runner.build_pipeline(LV_BLOCK, 1),
    ]
    assert pipelines[0].batch_key() == pipelines[1].batch_key() is not None
    assert OutOfOrderPipeline._can_run_batch(pipelines)
    results = OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=WARMUP)
    assert results[0] == _sequential(runner, LV_BASELINE, [None])[0]
    assert results[1:] == _sequential(runner, LV_BLOCK, [0, 1])


def test_reused_pipeline_has_no_batch_key(runner):
    warm = runner.build_pipeline(LV_BLOCK, 0)
    assert warm.batch_key() is not None
    warm.run(runner.trace("gzip"), measure_from=WARMUP)
    assert warm.batch_key() is None


def test_high_voltage_lanes(runner):
    """Fault-free lanes (identical contents) batch too — the degenerate
    but common normalisation-baseline case."""
    expected = _sequential(runner, HV_BASELINE, [None, None], benchmark="applu")
    assert (
        _batched(runner, HV_BASELINE, [None, None], benchmark="applu")
        == expected
    )


def test_partially_warm_victim_cache_appends_before_evicting(runner):
    """A pre-filled victim cache must behave like the sequential list:
    inserts land in empty slots first (append semantics), never evicting
    warm entries while capacity remains."""
    trace = runner.trace("gzip")

    def prefill(pipeline):
        # Seed both victim caches with blocks the trace will not touch
        # (high addresses), leaving most slots empty.
        for victim in (pipeline.hierarchy.victim_i, pipeline.hierarchy.victim_d):
            victim.insert((1 << 40) + 1)
            victim.insert((1 << 40) + 2)

    expected = []
    for m in range(2):
        p = runner.build_pipeline(LV_BLOCK_V10, m)
        prefill(p)
        expected.append(p.run(trace, measure_from=WARMUP))
    pipelines = [runner.build_pipeline(LV_BLOCK_V10, m) for m in range(2)]
    for p in pipelines:
        prefill(p)
    assert OutOfOrderPipeline._can_run_batch(pipelines)
    results = OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=WARMUP)
    assert results == expected
    for p, q in zip(pipelines, expected):
        assert p.hierarchy.stats().snapshot() == q.hierarchy_stats


def test_batched_state_supports_warm_reuse(runner):
    """After a batched run, each lane's hierarchy must behave exactly as
    if it had been run sequentially: a second (warm, generic-loop) run
    over the same hierarchies stays bit-identical."""
    trace = runner.trace("gzip")
    reference = []
    for m in range(2):
        p = runner.build_pipeline(LV_BLOCK_V6, m)
        reference.append(
            (p.run(trace, measure_from=WARMUP), p.run(trace, measure_from=WARMUP))
        )
    pipelines = [runner.build_pipeline(LV_BLOCK_V6, m) for m in range(2)]
    first = OutOfOrderPipeline.run_batch(pipelines, trace, measure_from=WARMUP)
    for m, p in enumerate(pipelines):
        assert first[m] == reference[m][0]
        assert p.run(trace, measure_from=WARMUP) == reference[m][1]
        # The written-back residency index must agree with the tags.
        for cache in (p.hierarchy.l1i, p.hierarchy.l1d, p.hierarchy.l2):
            for block, index in cache._resident.items():
                assert cache._tags[index] == block >> cache._tag_shift
            assert len(cache.resident_blocks()) == sum(
                1 for t in cache._tags if t >= 0
            )
