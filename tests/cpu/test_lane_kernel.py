"""The compiled lane kernel: gating, caching, and bit-identity with the
pure-NumPy fallback loop.

The kernel is an optional accelerator — ``REPRO_NO_CKERNEL=1``, a
missing compiler, or a failed build must all leave behaviour unchanged.
These tests pin the load gates and, when a kernel is available, drive
the same batches through both paths and require byte-identical results
(cycles and every statistic).
"""

from __future__ import annotations

import os
import subprocess

import pytest

from repro.cpu import lane_kernel
from repro.cpu.pipeline import OutOfOrderPipeline
from repro.experiments.configs import (
    LV_BLOCK,
    LV_BLOCK_V6,
    LV_BLOCK_V10,
    LV_INCREMENTAL,
)
from repro.experiments.runner import ExperimentRunner, RunnerSettings

SETTINGS = RunnerSettings(
    n_instructions=4_000,
    warmup_instructions=1_000,
    n_fault_maps=4,
    benchmarks=("gzip",),
)
WARMUP = SETTINGS.warmup_instructions

kernel_available = pytest.mark.skipif(
    lane_kernel.load() is None, reason="no compiled lane kernel on this host"
)


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(SETTINGS)


def _run_batch(runner, config, indices, benchmark="gzip"):
    trace = runner.trace(benchmark)
    pipelines = [runner.build_pipeline(config, m) for m in indices]
    results = OutOfOrderPipeline.run_batch(
        pipelines, trace, measure_from=WARMUP, min_lanes=1
    )
    return results, pipelines


class TestGating:
    def test_env_override_disables_the_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
        assert lane_kernel.load() is None

    def test_ctx_layout_is_dense_and_unique(self):
        slots = sorted(lane_kernel.CTX.values())
        assert len(slots) == len(set(slots))
        assert max(slots) < lane_kernel.CTX_SLOTS

    @kernel_available
    def test_kernel_memoised_per_process(self):
        assert lane_kernel.load() is lane_kernel.load()


@kernel_available
class TestKernelVsFallback:
    @pytest.mark.parametrize(
        "config", [LV_BLOCK, LV_BLOCK_V10, LV_INCREMENTAL]
    )
    def test_results_bit_identical(self, runner, config, monkeypatch):
        indices = range(SETTINGS.n_fault_maps)
        with_kernel, _ = _run_batch(runner, config, indices)
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
        assert lane_kernel.load() is None
        without, _ = _run_batch(runner, config, indices)
        assert with_kernel == without

    def test_hierarchy_state_writeback_matches(self, runner, monkeypatch):
        """Both paths must leave identical cache statistics behind on
        every lane's hierarchy (the post-batch warm-reuse contract)."""
        indices = range(SETTINGS.n_fault_maps)
        _, with_kernel = _run_batch(runner, LV_BLOCK, indices)
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
        _, without = _run_batch(runner, LV_BLOCK, indices)
        for pk, pn in zip(with_kernel, without):
            assert pk.hierarchy.stats() == pn.hierarchy.stats()

    def test_padded_heterogeneous_victims(self, runner, monkeypatch):
        """A mixed 0/8/16-entry victim batch exercises the padded slot
        axis through the kernel's D-miss resume protocol."""
        trace = runner.trace("gzip")

        def build():
            return [
                runner.build_pipeline(LV_BLOCK, 0),
                runner.build_pipeline(LV_BLOCK_V6, 0),
                runner.build_pipeline(LV_BLOCK_V10, 0),
                runner.build_pipeline(LV_BLOCK_V10, 1),
            ]

        with_kernel = OutOfOrderPipeline.run_batch(
            build(), trace, measure_from=WARMUP, min_lanes=1
        )
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
        without = OutOfOrderPipeline.run_batch(
            build(), trace, measure_from=WARMUP, min_lanes=1
        )
        assert with_kernel == without


@kernel_available
class TestBuildCache:
    def test_shared_object_cached_by_source_hash(self):
        cache_dir = os.environ.get("REPRO_KERNEL_CACHE") or os.path.join(
            __import__("tempfile").gettempdir(),
            f"repro-lane-kernel-{os.getuid()}",
        )
        objects = [
            name
            for name in os.listdir(cache_dir)
            if name.startswith("lane_kernel_") and name.endswith(".so")
        ]
        assert objects, "kernel loaded but no cached shared object found"


class TestBuildFailureWarning:
    @pytest.fixture(autouse=True)
    def fresh_build_state(self, monkeypatch, tmp_path):
        # Each test gets an empty kernel cache and pristine module state,
        # restored afterwards so other tests keep the real kernel.
        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        monkeypatch.setattr(lane_kernel, "_cached_fn", None)
        monkeypatch.setattr(lane_kernel, "_build_failed", False)
        monkeypatch.setattr(lane_kernel, "_warned", False)

    def test_gcc_failure_warns_once_with_stderr_tail(self, monkeypatch):
        def failing_gcc(*args, **kwargs):
            raise subprocess.CalledProcessError(
                1, ["gcc"], stderr=b"lane_kernel.c:1:1: error: something broke\n"
            )

        monkeypatch.setattr(lane_kernel.subprocess, "run", failing_gcc)
        with pytest.warns(RuntimeWarning, match="something broke"):
            assert lane_kernel.load() is None
        # One-shot: the failure is memoised and the warning never repeats.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert lane_kernel.load() is None

    def test_missing_compiler_warns_with_cause(self, monkeypatch):
        def no_gcc(*args, **kwargs):
            raise FileNotFoundError("No such file or directory: 'gcc'")

        monkeypatch.setattr(lane_kernel.subprocess, "run", no_gcc)
        with pytest.warns(RuntimeWarning, match="NumPy lane loop"):
            assert lane_kernel.load() is None
