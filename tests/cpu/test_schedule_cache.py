"""Persistent front-end schedule cache (sched-<key>.npz entries)."""

from __future__ import annotations

import os

import pytest

from repro.cpu.config import PAPER_PIPELINE, PipelineConfig
from repro.cpu.frontend import (
    SCHEDULE_CACHE_STATS,
    frontend_schedule,
    load_schedule,
    save_schedule,
    schedule_disk_key,
)
from repro.workloads.generator import generate_trace

OFFSET_BITS = 6
MEASURE_FROM = 500


def _trace(seed=9):
    return generate_trace("gzip", 3_000, seed=seed)


@pytest.fixture(autouse=True)
def _snapshot_stats():
    before = dict(SCHEDULE_CACHE_STATS)
    yield
    for key, value in before.items():
        SCHEDULE_CACHE_STATS[key] = value


def _delta(before, key):
    return SCHEDULE_CACHE_STATS[key] - before[key]


def test_roundtrip_is_bit_identical(tmp_path):
    trace = _trace()
    schedule = frontend_schedule(trace, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    path = tmp_path / "sched.npz"
    save_schedule(schedule, os.fspath(path))
    assert load_schedule(os.fspath(path)) == schedule


def test_second_process_loads_instead_of_rebuilding(tmp_path):
    before = dict(SCHEDULE_CACHE_STATS)
    first = _trace()
    first._schedule_cache_dir = os.fspath(tmp_path)
    built = frontend_schedule(first, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    assert _delta(before, "persisted") == 1
    entries = [p for p in os.listdir(tmp_path) if p.startswith("sched-")]
    assert len(entries) == 1

    # A fresh trace object with identical content models a new worker
    # process: the schedule must come from disk, bit-identical.
    second = _trace()
    second._schedule_cache_dir = os.fspath(tmp_path)
    loaded = frontend_schedule(second, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    assert _delta(before, "loaded") == 1
    assert loaded == built


def test_memoised_lookup_skips_disk(tmp_path):
    before = dict(SCHEDULE_CACHE_STATS)
    trace = _trace()
    trace._schedule_cache_dir = os.fspath(tmp_path)
    frontend_schedule(trace, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    frontend_schedule(trace, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    assert _delta(before, "persisted") == 1
    assert _delta(before, "loaded") == 0


def test_corrupt_entry_is_discarded_and_rebuilt(tmp_path):
    before = dict(SCHEDULE_CACHE_STATS)
    first = _trace()
    first._schedule_cache_dir = os.fspath(tmp_path)
    built = frontend_schedule(first, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    entry = next(p for p in os.listdir(tmp_path) if p.startswith("sched-"))
    (tmp_path / entry).write_bytes(b"not an npz")

    second = _trace()
    second._schedule_cache_dir = os.fspath(tmp_path)
    rebuilt = frontend_schedule(second, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    assert _delta(before, "discarded") == 1
    assert rebuilt == built
    # The corrupt entry was replaced by a fresh one.
    third = _trace()
    third._schedule_cache_dir = os.fspath(tmp_path)
    frontend_schedule(third, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    assert _delta(before, "loaded") == 1


def test_keys_separate_content_and_frontend_parameters(tmp_path):
    base = _trace()
    assert schedule_disk_key(
        base, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM
    ) == schedule_disk_key(_trace(), PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    # Different trace content, measured region, or front-end parameters
    # must all produce distinct entries.
    assert schedule_disk_key(
        _trace(seed=10), PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM
    ) != schedule_disk_key(base, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    assert schedule_disk_key(
        base, PAPER_PIPELINE, OFFSET_BITS, 0
    ) != schedule_disk_key(base, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    narrow = PipelineConfig(fetch_width=2)
    assert schedule_disk_key(
        base, narrow, OFFSET_BITS, MEASURE_FROM
    ) != schedule_disk_key(base, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)


def test_env_variable_names_the_cache(tmp_path, monkeypatch):
    before = dict(SCHEDULE_CACHE_STATS)
    monkeypatch.setenv("REPRO_TRACE_CACHE", os.fspath(tmp_path))
    trace = _trace()
    frontend_schedule(trace, PAPER_PIPELINE, OFFSET_BITS, MEASURE_FROM)
    assert _delta(before, "persisted") == 1
    assert any(p.startswith("sched-") for p in os.listdir(tmp_path))
