"""Tests for the branch predictors (gshare, RAS, line predictor)."""

import random

import pytest

from repro.cpu.branch import GsharePredictor, LinePredictor, ReturnAddressStack


class TestGshare:
    def test_storage_is_8kb_for_paper_config(self):
        assert GsharePredictor(15).storage_bits == 8 * 1024 * 8

    def test_learns_always_taken(self):
        predictor = GsharePredictor(10)
        for _ in range(100):
            predictor.predict_and_update(0x400, True)
        # After warmup, predictions are essentially perfect.
        assert predictor.misprediction_rate < 0.1

    def test_learns_biased_branch(self):
        predictor = GsharePredictor(12)
        rng = random.Random(1)
        correct = 0
        trials = 2000
        for _ in range(trials):
            taken = rng.random() < 0.95
            correct += predictor.predict_and_update(0x400, taken)
        assert correct / trials > 0.85

    def test_random_branch_near_chance(self):
        predictor = GsharePredictor(12)
        rng = random.Random(2)
        correct = sum(
            predictor.predict_and_update(0x400, rng.random() < 0.5)
            for _ in range(4000)
        )
        assert 0.35 < correct / 4000 < 0.65

    def test_distinct_branches_do_not_destructively_alias(self):
        """Two opposite-biased branches at different PCs both get learned."""
        predictor = GsharePredictor(14)
        correct = 0
        for _ in range(500):
            correct += predictor.predict_and_update(0x1000, True)
            correct += predictor.predict_and_update(0x2000, False)
        assert correct / 1000 > 0.8

    def test_counts(self):
        predictor = GsharePredictor(10)
        predictor.predict_and_update(0, True)
        assert predictor.predictions == 1

    def test_rejects_bad_history_bits(self):
        with pytest.raises(ValueError):
            GsharePredictor(0)
        with pytest.raises(ValueError):
            GsharePredictor(30)

    def test_zero_rate_before_use(self):
        assert GsharePredictor(10).misprediction_rate == 0.0


class TestRAS:
    def test_matched_call_return(self):
        ras = ReturnAddressStack(16)
        ras.push(0x1004)
        assert ras.pop_and_check(0x1004)
        assert ras.mispredictions == 0

    def test_mismatch_counts(self):
        ras = ReturnAddressStack(16)
        ras.push(0x1004)
        assert not ras.pop_and_check(0x2000)
        assert ras.mispredictions == 1

    def test_empty_pop_mispredicts(self):
        ras = ReturnAddressStack(16)
        assert not ras.pop_and_check(0x1004)
        assert ras.mispredictions == 1

    def test_nested_calls_lifo(self):
        ras = ReturnAddressStack(16)
        ras.push(0xA)
        ras.push(0xB)
        assert ras.pop_and_check(0xB)
        assert ras.pop_and_check(0xA)

    def test_overflow_drops_deepest(self):
        ras = ReturnAddressStack(2)
        ras.push(0xA)
        ras.push(0xB)
        ras.push(0xC)  # drops 0xA
        assert ras.pop_and_check(0xC)
        assert ras.pop_and_check(0xB)
        assert not ras.pop_and_check(0xA)  # lost to overflow

    def test_depth(self):
        ras = ReturnAddressStack(4)
        ras.push(1)
        ras.push(2)
        assert ras.depth == 2

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestLinePredictor:
    def test_first_lookup_misses_then_learns(self):
        lp = LinePredictor(64)
        assert not lp.predict_and_update(0x400, 7)
        assert lp.predict_and_update(0x400, 7)

    def test_target_change_misses(self):
        lp = LinePredictor(64)
        lp.predict_and_update(0x400, 7)
        assert not lp.predict_and_update(0x400, 8)
        assert lp.predict_and_update(0x400, 8)

    def test_miss_rate(self):
        lp = LinePredictor(64)
        lp.predict_and_update(0x400, 1)
        lp.predict_and_update(0x400, 1)
        assert lp.miss_rate == pytest.approx(0.5)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            LinePredictor(100)
