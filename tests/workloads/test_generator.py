"""Tests for the synthetic trace generator."""

import pytest

from repro.cpu.isa import InstrClass
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec2000 import ALL_BENCHMARKS


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace("crafty", 5000, seed=3)
        b = generate_trace("crafty", 5000, seed=3)
        assert a.pc == b.pc
        assert a.mem_addr == b.mem_addr
        assert a.taken == b.taken

    def test_different_seed_different_trace(self):
        a = generate_trace("crafty", 5000, seed=3)
        b = generate_trace("crafty", 5000, seed=4)
        assert a.mem_addr != b.mem_addr

    def test_different_benchmarks_differ(self):
        a = generate_trace("crafty", 5000, seed=3)
        b = generate_trace("gzip", 5000, seed=3)
        assert a.pc != b.pc


class TestStructure:
    def test_requested_length(self):
        assert len(generate_trace("gcc", 3000, seed=0)) == 3000

    def test_traces_validate(self):
        for name in ("crafty", "swim", "mcf"):
            generate_trace(name, 3000, seed=0).validate()

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            generate_trace("gcc", 0)

    def test_mix_tracks_profile(self):
        """Emitted class fractions track the profile within tolerance."""
        from repro.workloads.spec2000 import get_profile

        profile = get_profile("crafty")
        trace = generate_trace("crafty", 30_000, seed=1)
        mix = trace.class_mix()
        assert mix["load"] == pytest.approx(profile.load_frac, abs=0.03)
        assert mix["store"] == pytest.approx(profile.store_frac, abs=0.03)
        assert mix["branch"] == pytest.approx(profile.branch_frac, abs=0.03)

    def test_memory_footprint_scales_with_ws(self):
        small = generate_trace("eon", 30_000, seed=0)  # 12KB working set
        large = generate_trace("mcf", 30_000, seed=0)  # 8MB working set
        assert large.memory_footprint_bytes() > 4 * small.memory_footprint_bytes()

    def test_code_footprint_scales(self):
        small = generate_trace("swim", 40_000, seed=0)  # 16KB code
        large = generate_trace("gcc", 40_000, seed=0)  # 448KB code
        assert large.code_footprint_bytes() > 2 * small.code_footprint_bytes()

    def test_branches_have_outcomes(self):
        trace = generate_trace("twolf", 10_000, seed=0)
        branch_indices = [
            i for i, c in enumerate(trace.iclass) if c == InstrClass.BRANCH
        ]
        assert branch_indices
        taken = sum(trace.taken[i] for i in branch_indices)
        # Both outcomes must occur.
        assert 0 < taken < len(branch_indices)

    def test_loads_have_addresses(self):
        trace = generate_trace("ammp", 5000, seed=0)
        for i, cls in enumerate(trace.iclass):
            if cls in (InstrClass.LOAD, InstrClass.STORE):
                assert trace.mem_addr[i] >= 0


class TestConflictPattern:
    def test_conflict_pool_maps_to_few_sets(self, paper_geometry):
        """The conflict stressor must land in `conflict_sets` cache sets."""
        generator = TraceGenerator("crafty", seed=0)
        pool = generator._conflict_pool
        sets = {paper_geometry.set_index(addr) for addr in pool}
        assert len(sets) == generator.profile.conflict_sets

    def test_conflict_blocks_are_distinct(self, paper_geometry):
        generator = TraceGenerator("crafty", seed=0)
        blocks = {a >> 6 for a in generator._conflict_pool}
        assert len(blocks) == generator.profile.conflict_blocks


class TestGeneratorAPI:
    def test_accepts_profile_object(self):
        profile = WorkloadProfile(
            name="custom",
            suite="int",
            load_frac=0.2,
            store_frac=0.1,
            branch_frac=0.1,
        )
        trace = generate_trace(profile, 2000, seed=0)
        assert trace.name == "custom"

    def test_all_benchmarks_generate(self):
        for name in ALL_BENCHMARKS:
            trace = generate_trace(name, 500, seed=0)
            assert len(trace) == 500
