"""Tests for workload profiles and the SPEC 2000 suite definition."""

import pytest

from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec2000 import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    SPEC2000_PROFILES,
    get_profile,
)


class TestSuiteDefinition:
    def test_26_benchmarks(self):
        """The paper: 'we run all 26 SPEC CPU 2000 benchmarks'."""
        assert len(ALL_BENCHMARKS) == 26

    def test_fp_int_split(self):
        assert len(FP_BENCHMARKS) == 14
        assert len(INT_BENCHMARKS) == 12

    def test_figure_order_fp_first(self):
        assert ALL_BENCHMARKS[:14] == FP_BENCHMARKS
        assert ALL_BENCHMARKS[14:] == INT_BENCHMARKS

    def test_every_benchmark_has_profile(self):
        for name in ALL_BENCHMARKS:
            assert name in SPEC2000_PROFILES

    def test_profiles_match_suite_labels(self):
        for name in FP_BENCHMARKS:
            assert SPEC2000_PROFILES[name].suite == "fp"
        for name in INT_BENCHMARKS:
            assert SPEC2000_PROFILES[name].suite == "int"

    def test_paper_figure_names_present(self):
        for name in ("crafty", "mesa", "wupwise", "gap", "gzip", "perlbmk", "mcf"):
            assert name in ALL_BENCHMARKS

    def test_get_profile_error_message(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_profile("bzip2")


class TestProfileValidation:
    def make(self, **overrides):
        base = dict(
            name="x", suite="int", load_frac=0.25, store_frac=0.1, branch_frac=0.1
        )
        base.update(overrides)
        return WorkloadProfile(**base)

    def test_valid_profile(self):
        profile = self.make()
        assert profile.name == "x"

    def test_rejects_bad_suite(self):
        with pytest.raises(ValueError):
            self.make(suite="mixed")

    def test_rejects_mix_over_one(self):
        with pytest.raises(ValueError):
            self.make(load_frac=0.7, store_frac=0.3, branch_frac=0.2)

    def test_rejects_negative_fraction(self):
        with pytest.raises(ValueError):
            self.make(load_frac=-0.1)

    def test_rejects_zero_working_set(self):
        with pytest.raises(ValueError):
            self.make(ws_kb=0)

    def test_rejects_empty_pattern_mixture(self):
        with pytest.raises(ValueError):
            self.make(stream_frac=0, stride_frac=0, random_frac=0, conflict_frac=0)

    def test_pattern_weights_normalised(self):
        profile = self.make(
            stream_frac=0.2, stride_frac=0.2, random_frac=0.2, conflict_frac=0.2
        )
        weights = profile.pattern_weights
        assert sum(weights) == pytest.approx(1.0)
        assert all(w == pytest.approx(0.25) for w in weights)


class TestProfileDiversity:
    """The suite must span the behaviour space the paper's results need."""

    def test_has_streaming_fp(self):
        swim = SPEC2000_PROFILES["swim"]
        assert swim.stream_frac > 0.7
        assert swim.ws_kb >= 4096

    def test_has_pointer_chaser(self):
        mcf = SPEC2000_PROFILES["mcf"]
        assert mcf.random_frac >= 0.7
        assert mcf.ws_kb >= 4096

    def test_has_conflict_sensitive_int(self):
        crafty = SPEC2000_PROFILES["crafty"]
        assert crafty.conflict_frac >= 0.3

    def test_has_code_heavy(self):
        assert SPEC2000_PROFILES["gcc"].code_kb >= 256

    def test_paper_min_dip_benchmarks_have_conflicts(self):
        """mesa, wupwise, gap, gzip, perlbmk: the benchmarks whose
        block-disable minimum dips below word-disable in Fig. 8 — all need
        set-conflict pressure in their profiles."""
        for name in ("mesa", "wupwise", "gap", "gzip", "perlbmk"):
            assert SPEC2000_PROFILES[name].conflict_frac > 0.0
