"""Shared fixtures: paper geometries, small fast geometries, fault maps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import PAPER_L1_GEOMETRY, CacheGeometry, FaultMap


@pytest.fixture
def paper_geometry() -> CacheGeometry:
    """The paper's 32KB 8-way 64B-block running example (d=512, k=537)."""
    return PAPER_L1_GEOMETRY


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A small cache for fast behavioural tests: 4KB, 4-way, 64B blocks."""
    return CacheGeometry(size_bytes=4 * 1024, ways=4, block_bytes=64)


@pytest.fixture
def paper_fault_map(paper_geometry: CacheGeometry) -> FaultMap:
    """A deterministic pfail=0.001 fault map on the paper geometry."""
    return FaultMap.generate(paper_geometry, 0.001, seed=12345)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
