"""Tests for the realized-capacity helpers bridging schemes and analysis."""

import numpy as np
import pytest

from repro.core import (
    BaselineScheme,
    BlockDisableScheme,
    WordDisableScheme,
    capacity_samples,
    mean_capacity,
    per_set_associativity_histogram,
    realized_capacity,
)
from repro.faults import FaultMap


class TestRealizedCapacity:
    def test_block_disable_matches_fault_map(self, paper_geometry, paper_fault_map):
        sample = realized_capacity(BlockDisableScheme(), paper_geometry, paper_fault_map)
        assert sample.capacity_fraction == pytest.approx(
            paper_fault_map.capacity_fraction()
        )
        assert sample.usable

    def test_word_disable_is_half_or_zero(self, paper_geometry, paper_fault_map):
        sample = realized_capacity(WordDisableScheme(), paper_geometry, paper_fault_map)
        assert sample.capacity_fraction in (0.0, 0.5)

    def test_baseline_full(self, paper_geometry, paper_fault_map):
        sample = realized_capacity(BaselineScheme(), paper_geometry, paper_fault_map)
        assert sample.capacity_fraction == 1.0


class TestSampling:
    def test_sample_count(self, paper_geometry):
        samples = capacity_samples(BlockDisableScheme(), paper_geometry, 0.001, 5, seed=0)
        assert len(samples) == 5

    def test_mean_capacity_matches_eq2(self, paper_geometry):
        from repro.analysis.urn import expected_capacity_fraction

        samples = capacity_samples(
            BlockDisableScheme(), paper_geometry, 0.001, 30, seed=1
        )
        expected = expected_capacity_fraction(paper_geometry.cells_per_block, 0.001)
        assert mean_capacity(samples) == pytest.approx(expected, abs=0.02)

    def test_mean_capacity_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_capacity([])


class TestAssociativityHistogram:
    def test_histogram_sums_to_sets(self, paper_geometry, paper_fault_map):
        hist = per_set_associativity_histogram(
            BlockDisableScheme(), paper_geometry, paper_fault_map
        )
        assert hist.sum() == 64
        assert len(hist) == 9  # 0..8 ways

    def test_clean_map_all_sets_full(self, paper_geometry):
        hist = per_set_associativity_histogram(
            BlockDisableScheme(), paper_geometry, FaultMap.empty(paper_geometry)
        )
        assert hist[8] == 64
        assert hist[:8].sum() == 0

    def test_baseline_ignores_faults(self, paper_geometry, paper_fault_map):
        hist = per_set_associativity_histogram(
            BaselineScheme(), paper_geometry, paper_fault_map
        )
        assert hist[8] == 64

    def test_variable_associativity_at_paper_pfail(
        self, paper_geometry, paper_fault_map
    ):
        """Section III: block-disabling leaves *variable* associativity —
        at pfail = 1e-3 several distinct way-counts coexist."""
        hist = per_set_associativity_histogram(
            BlockDisableScheme(), paper_geometry, paper_fault_map
        )
        assert (hist > 0).sum() >= 3
