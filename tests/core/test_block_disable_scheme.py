"""Tests for the block-disabling scheme (the paper's proposal)."""

import numpy as np
import pytest

from repro.core import BlockDisableScheme
from repro.core.schemes import VoltageMode
from repro.faults import FaultMap


class TestHighVoltage:
    """Section III: the disable bit is ignored at or above Vcc-min."""

    def test_full_cache_no_mask(self, paper_geometry):
        config = BlockDisableScheme().configure(paper_geometry, None, VoltageMode.HIGH)
        assert config.enabled_ways is None
        assert config.usable
        assert config.usable_blocks == 512

    def test_no_latency_adder(self, paper_geometry):
        config = BlockDisableScheme().configure(paper_geometry, None, VoltageMode.HIGH)
        assert config.latency_adder == 0

    def test_latency_adder_method(self):
        scheme = BlockDisableScheme()
        assert scheme.latency_adder(VoltageMode.HIGH) == 0
        assert scheme.latency_adder(VoltageMode.LOW) == 0


class TestLowVoltage:
    def test_disabled_blocks_match_fault_map(self, paper_geometry, paper_fault_map):
        config = BlockDisableScheme().configure(
            paper_geometry, paper_fault_map, VoltageMode.LOW
        )
        assert config.usable_blocks == 512 - paper_fault_map.num_faulty_blocks()

    def test_enabled_ways_complement_faulty(self, paper_geometry, paper_fault_map):
        config = BlockDisableScheme().configure(
            paper_geometry, paper_fault_map, VoltageMode.LOW
        )
        assert np.array_equal(
            config.enabled_ways, ~paper_fault_map.faulty_ways_by_set()
        )

    def test_tag_fault_disables_block(self, paper_geometry):
        """Section III: 'a block is disabled when there is a faulty bit in
        either or both the tag or data of a block'."""
        faults = np.zeros((512, 537), dtype=bool)
        faults[10, 536] = True  # valid bit
        fm = FaultMap(paper_geometry, faults)
        config = BlockDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.usable_blocks == 511

    def test_tag_protected_variant(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[10, 536] = True  # tag-region fault only
        fm = FaultMap(paper_geometry, faults)
        scheme = BlockDisableScheme(include_tag_faults=False)
        config = scheme.configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.usable_blocks == 512

    def test_always_usable(self, paper_geometry):
        """Block-disabling has no whole-cache-failure mode."""
        fm = FaultMap.generate(paper_geometry, 0.05, seed=0)  # extreme pfail
        config = BlockDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.usable

    def test_empty_map_keeps_everything(self, paper_geometry):
        fm = FaultMap.empty(paper_geometry)
        config = BlockDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.usable_blocks == 512

    def test_capacity_near_paper_mean(self, paper_geometry):
        """At pfail = 0.001 capacity should hover around 58% (Fig. 4)."""
        caps = []
        for seed in range(10):
            fm = FaultMap.generate(paper_geometry, 0.001, seed=seed)
            config = BlockDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
            caps.append(config.capacity_fraction(paper_geometry))
        assert 0.52 < np.mean(caps) < 0.65

    def test_notes_mention_disabled_count(self, paper_geometry, paper_fault_map):
        config = BlockDisableScheme().configure(
            paper_geometry, paper_fault_map, VoltageMode.LOW
        )
        assert str(paper_fault_map.num_faulty_blocks()) in config.notes
