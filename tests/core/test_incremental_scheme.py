"""Tests for the incremental word-disabling scheme."""

import numpy as np
import pytest

from repro.core import IncrementalWordDisableScheme
from repro.core.schemes import VoltageMode
from repro.faults import FaultMap


class TestPairStates:
    def test_clean_map_all_fault_free(self, paper_geometry):
        fm = FaultMap.empty(paper_geometry)
        states = IncrementalWordDisableScheme().pair_states(fm)
        assert states.shape == (64, 4)
        assert (states == 2).all()

    def test_single_data_fault_makes_pair_half(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[0, 100] = True  # block 0 => pair 0 of set 0
        fm = FaultMap(paper_geometry, faults)
        states = IncrementalWordDisableScheme().pair_states(fm)
        assert states[0, 0] == 1
        assert (states.ravel()[1:] == 2).sum() == 255

    def test_overloaded_subblock_disables_pair(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        for word in range(5):
            faults[1, word * 32] = True  # block 1 => pair 0 of set 0
        fm = FaultMap(paper_geometry, faults)
        states = IncrementalWordDisableScheme().pair_states(fm)
        assert states[0, 0] == 0

    def test_tag_faults_invisible(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[:, 520] = True  # tag cells only
        fm = FaultMap(paper_geometry, faults)
        states = IncrementalWordDisableScheme().pair_states(fm)
        assert (states == 2).all()


class TestConfiguration:
    def test_high_voltage_full_cache_plus_cycle(self, paper_geometry):
        config = IncrementalWordDisableScheme().configure(
            paper_geometry, None, VoltageMode.HIGH
        )
        assert config.usable
        assert config.latency_adder == 1
        assert config.usable_blocks == 512

    def test_enabled_ways_encode_pair_states(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[0, 100] = True  # pair 0 of set 0 -> half
        for word in range(5):
            faults[2, word * 32] = True  # pair 1 of set 0 -> disabled
        fm = FaultMap(paper_geometry, faults)
        config = IncrementalWordDisableScheme().configure(
            paper_geometry, fm, VoltageMode.LOW
        )
        enabled = config.enabled_ways
        assert enabled[0, 0] and not enabled[0, 1]  # half pair: one way
        assert not enabled[0, 2] and not enabled[0, 3]  # disabled pair
        assert enabled[0, 4:].all()  # untouched pairs at full strength

    def test_never_whole_cache_failure(self, paper_geometry):
        fm = FaultMap.generate(paper_geometry, 0.01, seed=3)
        config = IncrementalWordDisableScheme().configure(
            paper_geometry, fm, VoltageMode.LOW
        )
        assert config.usable

    def test_capacity_tracks_eq6(self, paper_geometry):
        """Sampled capacity is within a few points of the Eq. 6 expectation."""
        from repro.analysis.incremental import incremental_word_disable_capacity

        scheme = IncrementalWordDisableScheme()
        caps = []
        for seed in range(8):
            fm = FaultMap.generate(paper_geometry, 0.001, seed=seed)
            config = scheme.configure(paper_geometry, fm, VoltageMode.LOW)
            caps.append(config.usable_blocks / 512)
        expected = incremental_word_disable_capacity(0.001)
        assert np.mean(caps) == pytest.approx(expected, abs=0.05)

    def test_capacity_between_half_and_full_at_low_pfail(self, paper_geometry):
        fm = FaultMap.generate(paper_geometry, 0.0005, seed=1)
        config = IncrementalWordDisableScheme().configure(
            paper_geometry, fm, VoltageMode.LOW
        )
        assert 0.5 < config.capacity_fraction(paper_geometry) <= 1.0

    def test_odd_way_count_rejected(self):
        from repro.faults import CacheGeometry

        odd = CacheGeometry(size_bytes=4096, ways=1, block_bytes=64)
        fm = FaultMap.empty(odd)
        with pytest.raises(ValueError):
            IncrementalWordDisableScheme().pair_states(fm)

    def test_notes_summarise_states(self, paper_geometry, paper_fault_map):
        config = IncrementalWordDisableScheme().configure(
            paper_geometry, paper_fault_map, VoltageMode.LOW
        )
        assert "pairs" in config.notes
