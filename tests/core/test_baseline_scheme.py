"""Tests for the baseline (fault-intolerant) scheme."""

import pytest

from repro.core import BaselineScheme
from repro.core.schemes import VoltageMode
from repro.faults import FaultMap


class TestBaseline:
    def test_high_voltage_full_cache(self, paper_geometry):
        config = BaselineScheme().configure(paper_geometry, None, VoltageMode.HIGH)
        assert config.usable
        assert config.enabled_ways is None
        assert config.latency_adder == 0
        assert config.usable_blocks == 512

    def test_low_voltage_ignores_fault_map(self, paper_geometry, paper_fault_map):
        """The baseline is the normalisation reference: it pretends the
        cache is fault-free even below Vcc-min (paper Figs. 8-10)."""
        config = BaselineScheme().configure(
            paper_geometry, paper_fault_map, VoltageMode.LOW
        )
        assert config.usable_blocks == 512
        assert config.capacity_fraction(paper_geometry) == 1.0

    def test_low_voltage_without_map(self, paper_geometry):
        config = BaselineScheme().configure(paper_geometry, None, VoltageMode.LOW)
        assert config.usable

    def test_notes_flag_hypothetical_use(self, paper_geometry):
        config = BaselineScheme().configure(paper_geometry, None, VoltageMode.LOW)
        assert "hypothetical" in config.notes

    def test_latency_adder_zero_both_modes(self):
        scheme = BaselineScheme()
        assert scheme.latency_adder(VoltageMode.HIGH) == 0
        assert scheme.latency_adder(VoltageMode.LOW) == 0

    def test_builds_full_cache(self, paper_geometry):
        cache = (
            BaselineScheme()
            .configure(paper_geometry, None, VoltageMode.HIGH)
            .build_cache()
        )
        assert cache.usable_blocks == 512
        assert cache.capacity_fraction == 1.0
