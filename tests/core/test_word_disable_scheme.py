"""Tests for the word-disabling scheme (the comparator)."""

import numpy as np
import pytest

from repro.core import WordDisableScheme
from repro.core.schemes import VoltageMode
from repro.faults import FaultMap


class TestHighVoltage:
    def test_full_cache_but_plus_one_cycle(self, paper_geometry):
        config = WordDisableScheme().configure(paper_geometry, None, VoltageMode.HIGH)
        assert config.usable
        assert config.geometry == paper_geometry
        assert config.latency_adder == 1  # alignment network always on path


class TestLowVoltage:
    def test_halved_geometry(self, paper_geometry):
        fm = FaultMap.empty(paper_geometry)
        config = WordDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.geometry.size_bytes == 16 * 1024
        assert config.geometry.ways == 4
        assert config.latency_adder == 1

    def test_capacity_is_half(self, paper_geometry):
        fm = FaultMap.empty(paper_geometry)
        config = WordDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.capacity_fraction(paper_geometry) == pytest.approx(0.5)

    def test_usable_at_paper_pfail_usually(self, paper_geometry):
        """pwcf ~ 1.6e-3 at pfail = 0.001: ten random maps should all pass."""
        scheme = WordDisableScheme()
        for seed in range(10):
            fm = FaultMap.generate(paper_geometry, 0.001, seed=seed)
            assert scheme.configure(paper_geometry, fm, VoltageMode.LOW).usable

    def test_whole_cache_failure_on_bad_subblock(self, paper_geometry):
        """Five faulty words in one 8-word subblock kill the whole cache."""
        faults = np.zeros((512, 537), dtype=bool)
        for word in range(5):  # words 0..4 of block 3's first subblock
            faults[3, word * 32] = True
        fm = FaultMap(paper_geometry, faults)
        config = WordDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert not config.usable
        assert config.capacity_fraction(paper_geometry) == 0.0

    def test_four_faulty_words_tolerated(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        for word in range(4):
            faults[3, word * 32] = True
        fm = FaultMap(paper_geometry, faults)
        config = WordDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.usable

    def test_five_faults_in_one_word_tolerated(self, paper_geometry):
        """Many faulty cells in a single word cost only that word."""
        faults = np.zeros((512, 537), dtype=bool)
        faults[3, 0:5] = True  # five cells of word 0
        fm = FaultMap(paper_geometry, faults)
        config = WordDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.usable

    def test_tag_faults_ignored(self, paper_geometry):
        """Word-disabling keeps its tags in 10T cells: tag faults are
        invisible to it."""
        faults = np.zeros((512, 537), dtype=bool)
        faults[:, 512:] = True  # every tag/valid cell faulty
        fm = FaultMap(paper_geometry, faults)
        config = WordDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        assert config.usable

    def test_subblock_fault_counts_shape(self, paper_geometry, paper_fault_map):
        counts = WordDisableScheme().subblock_fault_counts(paper_fault_map)
        assert counts.shape == (512, 2)  # 16 words / 8-word subblocks

    def test_custom_subblock_size(self, paper_geometry):
        scheme = WordDisableScheme(subblock_words=4)
        assert scheme.word_tolerance == 2
        fm = FaultMap.empty(paper_geometry)
        assert scheme.subblock_fault_counts(fm).shape == (512, 4)

    def test_invalid_subblock_sizes(self):
        with pytest.raises(ValueError):
            WordDisableScheme(subblock_words=0)
        with pytest.raises(ValueError):
            WordDisableScheme(subblock_words=3)

    def test_untileable_subblock_rejected(self, paper_geometry, paper_fault_map):
        scheme = WordDisableScheme(subblock_words=6)
        with pytest.raises(ValueError):
            scheme.subblock_fault_counts(paper_fault_map)

    def test_failure_rate_tracks_eq4(self, paper_geometry):
        """At an exaggerated pfail, the sampled whole-cache-failure rate
        matches the Eq. 4 prediction within Monte Carlo noise."""
        from repro.analysis.word_disable import whole_cache_failure_probability

        scheme = WordDisableScheme()
        pfail = 0.004
        trials = 150
        failures = 0
        for seed in range(trials):
            fm = FaultMap.generate(paper_geometry, pfail, seed=seed)
            failures += scheme.whole_cache_failure(fm)
        rate = failures / trials
        expected = whole_cache_failure_probability(pfail)
        sigma = (expected * (1 - expected) / trials) ** 0.5
        assert abs(rate - expected) < 5 * sigma + 0.01
