"""Tests for the way- and set-disabling comparator schemes."""

import numpy as np
import pytest

from repro.core import SCHEMES, SetDisableScheme, WayDisableScheme
from repro.core.schemes import VoltageMode
from repro.faults import FaultMap


class TestRegistration:
    def test_registered(self):
        assert "way-disable" in SCHEMES.names()
        assert "set-disable" in SCHEMES.names()


class TestWayDisable:
    def test_high_voltage_untouched(self, paper_geometry):
        config = WayDisableScheme().configure(paper_geometry, None, VoltageMode.HIGH)
        assert config.usable_blocks == 512
        assert config.latency_adder == 0

    def test_single_fault_kills_whole_way(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[3, 0] = True  # block 3 = set 0, way 3
        fm = FaultMap(paper_geometry, faults)
        config = WayDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        enabled = config.enabled_ways
        assert not enabled[:, 3].any()  # way 3 dead in every set
        assert enabled[:, [0, 1, 2, 4, 5, 6, 7]].all()
        assert config.usable_blocks == 512 - 64

    def test_collapse_at_paper_pfail(self, paper_geometry, paper_fault_map):
        """At pfail = 0.001 every way contains faults: capacity ~0."""
        config = WayDisableScheme().configure(
            paper_geometry, paper_fault_map, VoltageMode.LOW
        )
        assert config.usable_blocks == 0

    def test_clean_map_keeps_all(self, paper_geometry):
        config = WayDisableScheme().configure(
            paper_geometry, FaultMap.empty(paper_geometry), VoltageMode.LOW
        )
        assert config.usable_blocks == 512

    def test_geometry_mismatch(self, paper_geometry, small_geometry):
        with pytest.raises(ValueError):
            WayDisableScheme().configure(
                paper_geometry, FaultMap.empty(small_geometry), VoltageMode.LOW
            )

    def test_cache_builds_and_operates(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[3, 0] = True
        fm = FaultMap(paper_geometry, faults)
        config = WayDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        cache = config.build_cache()
        cache.fill(0)
        assert cache.lookup(0)


class TestSetDisable:
    def test_single_fault_kills_whole_set(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[8, 5] = True  # block 8 = set 1, way 0
        fm = FaultMap(paper_geometry, faults)
        config = SetDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
        enabled = config.enabled_ways
        assert not enabled[1, :].any()
        assert enabled[0, :].all()
        assert config.usable_blocks == 512 - 8

    def test_collapse_at_paper_pfail(self, paper_geometry, paper_fault_map):
        """P(set clean) = (1-pbf)^8 ~ 1.3%: nearly all sets die."""
        config = SetDisableScheme().configure(
            paper_geometry, paper_fault_map, VoltageMode.LOW
        )
        assert config.usable_blocks < 0.1 * 512

    def test_disabled_set_bypasses(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[8, 5] = True  # kills set 1
        fm = FaultMap(paper_geometry, faults)
        cache = (
            SetDisableScheme()
            .configure(paper_geometry, fm, VoltageMode.LOW)
            .build_cache()
        )
        block_in_set1 = 1  # block address with set index 1
        assert cache.fill(block_in_set1) is None
        assert not cache.contains(block_in_set1)

    def test_matches_granularity_analysis(self, paper_geometry):
        """Sampled set-disable capacity tracks the closed form."""
        from repro.analysis.granularity import DisableGranularity, expected_capacity

        caps = []
        for seed in range(10):
            fm = FaultMap.generate(paper_geometry, 0.0005, seed=seed)
            config = SetDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
            caps.append(config.usable_blocks / 512)
        expected = expected_capacity(paper_geometry, DisableGranularity.SET, 0.0005)
        assert np.mean(caps) == pytest.approx(expected, abs=0.06)
