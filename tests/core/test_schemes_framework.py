"""Tests for the scheme framework, registry, and CacheConfiguration."""

import numpy as np
import pytest

import repro.core  # registers schemes  # noqa: F401
from repro.core.schemes import (
    SCHEMES,
    CacheConfiguration,
    SchemeRegistry,
    VoltageMode,
)
from repro.faults import FaultMap


class TestRegistry:
    def test_all_paper_schemes_registered(self):
        names = SCHEMES.names()
        for expected in (
            "baseline",
            "block-disable",
            "word-disable",
            "incremental-word-disable",
        ):
            assert expected in names

    def test_create_by_name(self):
        scheme = SCHEMES.create("block-disable")
        assert scheme.name == "block-disable"

    def test_create_unknown_raises(self):
        with pytest.raises(ValueError):
            SCHEMES.create("row-disable")

    def test_duplicate_registration_rejected(self):
        registry = SchemeRegistry()

        class Dummy:
            name = "dummy"

        registry.register(Dummy)  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            registry.register(Dummy)  # type: ignore[arg-type]

    def test_kwargs_forwarded(self):
        scheme = SCHEMES.create("word-disable", subblock_words=4)
        assert scheme.subblock_words == 4


class TestCacheConfiguration:
    def test_usable_blocks_all_enabled(self, paper_geometry):
        config = CacheConfiguration(
            geometry=paper_geometry,
            enabled_ways=None,
            latency_adder=0,
            usable=True,
            scheme_name="x",
            voltage=VoltageMode.HIGH,
        )
        assert config.usable_blocks == 512
        assert config.capacity_fraction(paper_geometry) == 1.0

    def test_capacity_fraction_with_mask(self, paper_geometry):
        enabled = np.ones((64, 8), dtype=bool)
        enabled[:32, :] = False
        config = CacheConfiguration(
            geometry=paper_geometry,
            enabled_ways=enabled,
            latency_adder=0,
            usable=True,
            scheme_name="x",
            voltage=VoltageMode.LOW,
        )
        assert config.capacity_fraction(paper_geometry) == pytest.approx(0.5)

    def test_unusable_capacity_is_zero(self, paper_geometry):
        config = CacheConfiguration(
            geometry=paper_geometry,
            enabled_ways=None,
            latency_adder=1,
            usable=False,
            scheme_name="word-disable",
            voltage=VoltageMode.LOW,
        )
        assert config.capacity_fraction(paper_geometry) == 0.0

    def test_build_unusable_raises(self, paper_geometry):
        config = CacheConfiguration(
            geometry=paper_geometry,
            enabled_ways=None,
            latency_adder=1,
            usable=False,
            scheme_name="word-disable",
            voltage=VoltageMode.LOW,
        )
        with pytest.raises(ValueError):
            config.build_cache()

    def test_halved_geometry_capacity_relative_to_reference(self, paper_geometry):
        config = CacheConfiguration(
            geometry=paper_geometry.with_halved_capacity(),
            enabled_ways=None,
            latency_adder=1,
            usable=True,
            scheme_name="word-disable",
            voltage=VoltageMode.LOW,
        )
        assert config.capacity_fraction(paper_geometry) == pytest.approx(0.5)

    def test_build_cache_honours_mask(self, paper_geometry, paper_fault_map):
        from repro.core import BlockDisableScheme

        config = BlockDisableScheme().configure(
            paper_geometry, paper_fault_map, VoltageMode.LOW
        )
        cache = config.build_cache()
        assert cache.usable_blocks == config.usable_blocks

    def test_low_voltage_requires_map(self, paper_geometry):
        from repro.core import BlockDisableScheme

        with pytest.raises(ValueError):
            BlockDisableScheme().configure(paper_geometry, None, VoltageMode.LOW)

    def test_geometry_mismatch_rejected(self, paper_geometry, small_geometry):
        from repro.core import BlockDisableScheme

        fm = FaultMap.empty(small_geometry)
        with pytest.raises(ValueError):
            BlockDisableScheme().configure(paper_geometry, fm, VoltageMode.LOW)
