"""Tests for Table I transistor accounting — exact paper values."""

import pytest

from repro.faults import PAPER_L1_GEOMETRY, CacheGeometry
from repro.overhead.transistors import OverheadModel


@pytest.fixture
def model():
    return OverheadModel(PAPER_L1_GEOMETRY)


class TestTableIExactValues:
    """The six rows of Table I, transistor-for-transistor."""

    def test_baseline(self, model):
        assert model.baseline().total_transistors == 76_800

    def test_baseline_with_victim(self, model):
        assert model.baseline_with_victim().total_transistors == 126_138

    def test_word_disabling(self, model):
        assert model.word_disabling().total_transistors == 209_920

    def test_block_disabling(self, model):
        assert model.block_disabling().total_transistors == 81_920

    def test_block_disabling_victim_10t(self, model):
        assert model.block_disabling_victim_10t().total_transistors == 164_150

    def test_block_disabling_victim_6t(self, model):
        assert model.block_disabling_victim_6t().total_transistors == 131_418

    def test_row_order_matches_paper(self, model):
        schemes = [row.scheme for row in model.all_rows()]
        assert schemes == [
            "baseline",
            "baseline+V$",
            "word-disable",
            "block-disable",
            "block-disable+V$ 10T",
            "block-disable+V$ 6T",
        ]


class TestPaperClaims:
    def test_block_disabling_always_cheapest_addon(self, model):
        """'It is evident that in all cases block-disabling has lower
        overhead': every block-disable row undercuts word-disabling."""
        word = model.word_disabling().total_transistors
        assert model.block_disabling().total_transistors < word
        assert model.block_disabling_victim_10t().total_transistors < word
        assert model.block_disabling_victim_6t().total_transistors < word

    def test_alignment_network_only_word_disable(self, model):
        for row in model.all_rows():
            assert row.needs_alignment_network == (row.scheme == "word-disable")

    def test_cache_increase_order_of_magnitude(self, model):
        """Section III: ~0.4% vs ~10% — more than an order of magnitude."""
        block = model.block_disable_cache_increase()
        word = model.word_disable_cache_increase()
        assert block < 0.01
        assert word > 0.05
        assert word / block > 10

    def test_overhead_vs_baseline(self, model):
        baseline = model.baseline()
        assert model.block_disabling().overhead_vs(baseline) == pytest.approx(
            5120 / 76800
        )
        assert baseline.overhead_vs(baseline) == 0.0


class TestParameterisation:
    def test_different_geometry_scales(self):
        small = OverheadModel(CacheGeometry(size_bytes=16 * 1024, ways=8, block_bytes=64))
        assert small.baseline().total_transistors < 76_800

    def test_victim_entries_scale(self):
        bigger = OverheadModel(PAPER_L1_GEOMETRY, victim_entries=32)
        assert (
            bigger.baseline_with_victim().total_transistors
            > OverheadModel(PAPER_L1_GEOMETRY).baseline_with_victim().total_transistors
        )

    def test_zero_baseline_rejected(self, model):
        row = model.baseline()
        from dataclasses import replace

        zero = replace(row, tag_transistors=0)
        with pytest.raises(ValueError):
            row.overhead_vs(zero)
