"""Tests for the disable-granularity design-space analysis."""

import numpy as np
import pytest

from repro.analysis.granularity import (
    DisableGranularity,
    capacity_curves,
    cells_per_unit,
    expected_capacity,
    granularity_tradeoff,
)


class TestCellsPerUnit:
    def test_word(self, paper_geometry):
        assert cells_per_unit(paper_geometry, DisableGranularity.WORD) == 32

    def test_block_is_k(self, paper_geometry):
        assert cells_per_unit(paper_geometry, DisableGranularity.BLOCK) == 537

    def test_set(self, paper_geometry):
        assert cells_per_unit(paper_geometry, DisableGranularity.SET) == 537 * 8

    def test_way(self, paper_geometry):
        assert cells_per_unit(paper_geometry, DisableGranularity.WAY) == 537 * 64

    def test_cache(self, paper_geometry):
        assert (
            cells_per_unit(paper_geometry, DisableGranularity.CACHE) == 274_944
        )

    def test_strict_ordering(self, paper_geometry):
        order = [
            DisableGranularity.WORD,
            DisableGranularity.BLOCK,
            DisableGranularity.SET,
            DisableGranularity.WAY,
            DisableGranularity.CACHE,
        ]
        sizes = [cells_per_unit(paper_geometry, g) for g in order]
        assert all(b > a for a, b in zip(sizes, sizes[1:]))


class TestExpectedCapacity:
    def test_block_matches_eq2(self, paper_geometry):
        from repro.analysis.urn import expected_capacity_fraction

        assert expected_capacity(
            paper_geometry, DisableGranularity.BLOCK, 0.001
        ) == pytest.approx(expected_capacity_fraction(537, 0.001))

    def test_finer_keeps_more(self, paper_geometry):
        p = 0.001
        word = expected_capacity(paper_geometry, DisableGranularity.WORD, p)
        block = expected_capacity(paper_geometry, DisableGranularity.BLOCK, p)
        set_ = expected_capacity(paper_geometry, DisableGranularity.SET, p)
        way = expected_capacity(paper_geometry, DisableGranularity.WAY, p)
        assert word > block > set_ > way

    def test_coarse_collapse_at_paper_pfail(self, paper_geometry):
        """The reason the paper picks blocks: sets and ways are hopeless at
        sub-Vcc-min densities."""
        assert expected_capacity(paper_geometry, DisableGranularity.SET, 0.001) < 0.02
        assert expected_capacity(paper_geometry, DisableGranularity.WAY, 0.001) < 1e-10

    def test_zero_pfail_full(self, paper_geometry):
        for g in DisableGranularity:
            assert expected_capacity(paper_geometry, g, 0.0) == 1.0

    def test_rejects_bad_pfail(self, paper_geometry):
        with pytest.raises(ValueError):
            expected_capacity(paper_geometry, DisableGranularity.BLOCK, -1.0)


class TestTradeoffTable:
    def test_five_rows_fine_to_coarse(self, paper_geometry):
        rows = granularity_tradeoff(paper_geometry, 0.001)
        assert [r.granularity for r in rows] == [
            DisableGranularity.WORD,
            DisableGranularity.BLOCK,
            DisableGranularity.SET,
            DisableGranularity.WAY,
            DisableGranularity.CACHE,
        ]

    def test_bookkeeping_decreases_with_coarseness(self, paper_geometry):
        rows = granularity_tradeoff(paper_geometry, 0.001)
        bits = [r.disable_bits for r in rows]
        assert bits == [8192, 512, 64, 8, 1]
        assert all(b < a for a, b in zip(bits, bits[1:]))

    def test_capacity_decreases_with_coarseness(self, paper_geometry):
        rows = granularity_tradeoff(paper_geometry, 0.001)
        caps = [r.capacity for r in rows]
        assert all(b <= a for a, b in zip(caps, caps[1:]))

    def test_curves_match_scalar(self, paper_geometry):
        pfails = [0.0, 0.001, 0.002]
        curves = capacity_curves(paper_geometry, pfails)
        for g, series in curves.items():
            for p, value in zip(pfails, series):
                assert value == pytest.approx(
                    expected_capacity(paper_geometry, g, p)
                )
