"""Tests for the capacity distribution (Eq. 3, Fig. 4)."""

import numpy as np
import pytest

from repro.analysis.capacity_dist import (
    CapacityDistribution,
    block_fault_probability,
    capacity_distribution_for_geometry,
)


@pytest.fixture
def paper_dist(paper_geometry):
    return capacity_distribution_for_geometry(paper_geometry, 0.001)


class TestBlockFaultProbability:
    def test_paper_value(self):
        assert block_fault_probability(537, 0.001) == pytest.approx(0.4157, abs=1e-3)

    def test_zero_pfail(self):
        assert block_fault_probability(537, 0.0) == 0.0

    def test_unity_pfail(self):
        assert block_fault_probability(537, 1.0) == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            block_fault_probability(0, 0.001)


class TestFig4Moments:
    """The paper reads Fig. 4 as 'normal with mean at 58% and standard
    deviation of 2.02' and P[capacity > 50%] = 99.9%."""

    def test_mean_capacity(self, paper_dist):
        assert paper_dist.mean_capacity == pytest.approx(0.584, abs=0.005)

    def test_std_capacity_about_two_percent(self, paper_dist):
        assert paper_dist.std_capacity == pytest.approx(0.0218, abs=0.002)

    def test_prob_above_half_is_999(self, paper_dist):
        assert paper_dist.prob_capacity_above(0.5) > 0.999

    def test_mean_blocks_matches_eq2(self, paper_dist):
        # d * (1 - pbf) == d - Eq.2
        assert paper_dist.mean_blocks == pytest.approx(512 - 212.8, abs=0.3)


class TestDistributionShape:
    def test_pmf_sums_to_one(self, paper_dist):
        assert paper_dist.pmf().sum() == pytest.approx(1.0, abs=1e-9)

    def test_pmf_length(self, paper_dist):
        assert len(paper_dist.pmf()) == 513

    def test_capacity_fractions_range(self, paper_dist):
        fr = paper_dist.capacity_fractions()
        assert fr[0] == 0.0
        assert fr[-1] == 1.0

    def test_pmf_mean_matches_closed_form(self, paper_dist):
        pmf = paper_dist.pmf()
        x = np.arange(513)
        assert (pmf * x).sum() == pytest.approx(paper_dist.mean_blocks, rel=1e-6)

    def test_pmf_std_matches_closed_form(self, paper_dist):
        pmf = paper_dist.pmf()
        x = np.arange(513)
        mean = (pmf * x).sum()
        var = (pmf * (x - mean) ** 2).sum()
        assert np.sqrt(var) == pytest.approx(paper_dist.std_blocks, rel=1e-6)

    def test_cdf_complement_consistency(self, paper_dist):
        assert paper_dist.prob_capacity_above(0.5) + paper_dist.prob_capacity_at_most(
            0.5
        ) == pytest.approx(1.0)

    def test_quantiles_bracket_mean(self, paper_dist):
        assert paper_dist.quantile(0.01) < paper_dist.mean_capacity
        assert paper_dist.quantile(0.99) > paper_dist.mean_capacity

    def test_normal_approximation_tuple(self, paper_dist):
        mean, sigma = paper_dist.normal_approximation()
        assert mean == paper_dist.mean_capacity
        assert sigma == paper_dist.std_capacity


class TestEdgeCases:
    def test_zero_pfail_degenerate(self):
        dist = CapacityDistribution(d=512, k=537, pfail=0.0)
        pmf = dist.pmf()
        assert pmf[-1] == pytest.approx(1.0)
        assert dist.prob_capacity_above(0.99) == pytest.approx(1.0)

    def test_high_pfail_collapses(self):
        dist = CapacityDistribution(d=512, k=537, pfail=0.05)
        assert dist.mean_capacity < 1e-9

    def test_prob_rejects_bad_fraction(self, paper_dist):
        with pytest.raises(ValueError):
            paper_dist.prob_capacity_above(1.5)

    def test_quantile_rejects_bad_q(self, paper_dist):
        with pytest.raises(ValueError):
            paper_dist.quantile(-0.1)
