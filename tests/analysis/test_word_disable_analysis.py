"""Tests for the word-disable failure analysis (Eqs. 4-5, Fig. 5)."""

import numpy as np
import pytest

from repro.analysis.word_disable import (
    half_block_fail_probability,
    whole_cache_failure_curve,
    whole_cache_failure_for_geometry,
    whole_cache_failure_probability,
    word_disable_capacity,
    word_fault_probability,
)


class TestWordFaultProbability:
    def test_32bit_word_at_0_001(self):
        # 1 - 0.999^32 ~ 0.0315
        assert word_fault_probability(0.001) == pytest.approx(0.0315, abs=1e-3)

    def test_zero_pfail(self):
        assert word_fault_probability(0.0) == 0.0

    def test_monotone_in_word_size(self):
        assert word_fault_probability(0.001, 64) > word_fault_probability(0.001, 32)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            word_fault_probability(-0.1)
        with pytest.raises(ValueError):
            word_fault_probability(0.001, 0)


class TestHalfBlockFailure:
    def test_magnitude_at_paper_point(self):
        # ~1.6e-6 at pfail = 0.001 for 8-word half-blocks.
        phbf = half_block_fail_probability(0.001)
        assert 1e-6 < phbf < 3e-6

    def test_default_tolerance_is_half(self):
        explicit = half_block_fail_probability(0.001, 8, 32, tolerance=4)
        assert half_block_fail_probability(0.001) == pytest.approx(explicit)

    def test_zero_tolerance_means_any_word_fault(self):
        pwf = word_fault_probability(0.001)
        phbf = half_block_fail_probability(0.001, 8, 32, tolerance=0)
        assert phbf == pytest.approx(1 - (1 - pwf) ** 8, rel=1e-9)

    def test_full_tolerance_never_fails(self):
        assert half_block_fail_probability(0.5, 8, 32, tolerance=8) == 0.0

    def test_monotone_in_pfail(self):
        values = [half_block_fail_probability(p) for p in (0.0005, 0.001, 0.002, 0.004)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            half_block_fail_probability(0.001, 8, 32, tolerance=9)


class TestWholeCacheFailure:
    """Fig. 5: pwcf ~ 1e-3 at pfail 0.001, rising ~10x by pfail 0.0015."""

    def test_paper_point_0_001(self):
        pwcf = whole_cache_failure_probability(0.001)
        assert 1e-3 < pwcf < 2.5e-3

    def test_paper_point_0_0015(self):
        pwcf = whole_cache_failure_probability(0.0015)
        assert 8e-3 < pwcf < 2e-2

    def test_tenfold_rise(self):
        ratio = whole_cache_failure_probability(0.0015) / whole_cache_failure_probability(
            0.001
        )
        assert 5 < ratio < 15

    def test_zero_pfail_never_fails(self):
        assert whole_cache_failure_probability(0.0) == 0.0

    def test_is_probability(self):
        for p in (0.0005, 0.001, 0.005, 0.02):
            assert 0.0 <= whole_cache_failure_probability(p) <= 1.0

    def test_more_blocks_more_failure(self):
        small = whole_cache_failure_probability(0.001, num_blocks=256)
        large = whole_cache_failure_probability(0.001, num_blocks=1024)
        assert large > small

    def test_curve_matches_scalar(self):
        pfails = [0.0005, 0.001, 0.0015]
        curve = whole_cache_failure_curve(pfails)
        for p, value in zip(pfails, curve):
            assert value == pytest.approx(whole_cache_failure_probability(p))

    def test_geometry_wrapper(self, paper_geometry):
        assert whole_cache_failure_for_geometry(
            paper_geometry, 0.001
        ) == pytest.approx(whole_cache_failure_probability(0.001))

    def test_rejects_bad_blocks(self):
        with pytest.raises(ValueError):
            whole_cache_failure_probability(0.001, num_blocks=0)


class TestCapacityConstant:
    def test_word_disable_capacity_is_half(self):
        assert word_disable_capacity(0.001) == 0.5

    def test_rejects_bad_pfail(self):
        with pytest.raises(ValueError):
            word_disable_capacity(1.2)
