"""Tests for the block-size study (Fig. 6) and victim-cache fault analysis."""

import numpy as np
import pytest

from repro.analysis.blocksize import capacity_at, capacity_vs_blocksize
from repro.analysis.victim import VictimCacheFaultAnalysis, paper_victim_analysis


class TestFig6BlockSizes:
    def test_three_series_by_default(self, paper_geometry):
        series = capacity_vs_blocksize(paper_geometry)
        assert [s.block_bytes for s in series] == [32, 64, 128]

    def test_smaller_blocks_keep_more_capacity(self, paper_geometry):
        """Fig. 6's ordering: 32B >= 64B >= 128B at every pfail > 0."""
        series = capacity_vs_blocksize(paper_geometry)
        c32, c64, c128 = (s.capacities for s in series)
        assert np.all(c32[1:] > c64[1:])
        assert np.all(c64[1:] > c128[1:])

    def test_capacity_one_at_zero_pfail(self, paper_geometry):
        for s in capacity_vs_blocksize(paper_geometry):
            assert s.capacities[0] == pytest.approx(1.0)

    def test_constant_cache_size_and_ways(self, paper_geometry):
        for s in capacity_vs_blocksize(paper_geometry):
            assert s.geometry.size_bytes == paper_geometry.size_bytes
            assert s.geometry.ways == paper_geometry.ways

    def test_point_query_matches_series(self, paper_geometry):
        pfails = np.array([0.002])
        series = capacity_vs_blocksize(paper_geometry, pfails=pfails)
        for s in series:
            assert capacity_at(paper_geometry, s.block_bytes, 0.002) == pytest.approx(
                s.capacities[0]
            )

    def test_custom_pfail_grid(self, paper_geometry):
        pfails = [0.0, 0.001]
        series = capacity_vs_blocksize(paper_geometry, pfails=pfails)
        assert all(len(s.capacities) == 2 for s in series)


class TestVictimAnalysis:
    """Section V: mean 6.5 faulty victim entries of 16 at pfail = 0.001."""

    def test_paper_mean_faulty_entries(self):
        analysis = paper_victim_analysis(0.001)
        assert analysis.mean_faulty_entries == pytest.approx(6.5, abs=0.2)

    def test_usable_complements_faulty(self):
        analysis = paper_victim_analysis(0.001)
        assert analysis.mean_usable_entries == pytest.approx(
            16 - analysis.mean_faulty_entries
        )

    def test_half_faulty_assumption_is_conservative(self):
        """The paper assumes 8 of 16 usable; the expected value is ~9.6, so
        the assumption under-promises."""
        analysis = paper_victim_analysis(0.001)
        assert analysis.mean_usable_entries > 8.0

    def test_pmf_sums_to_one(self):
        pmf = paper_victim_analysis(0.001).usable_entries_pmf()
        assert pmf.sum() == pytest.approx(1.0)
        assert len(pmf) == 17

    def test_prob_usable_at_least_monotone(self):
        analysis = paper_victim_analysis(0.001)
        probs = [analysis.prob_usable_at_least(k) for k in range(17)]
        assert all(b <= a + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_prob_usable_at_least_zero_is_one(self):
        assert paper_victim_analysis(0.001).prob_usable_at_least(0) == pytest.approx(1.0)

    def test_conservative_quantile_below_mean(self):
        analysis = paper_victim_analysis(0.001)
        assert analysis.conservative_usable_entries(0.05) <= analysis.mean_usable_entries

    def test_zero_pfail_all_usable(self):
        analysis = VictimCacheFaultAnalysis(entries=16, cells_per_entry=512, pfail=0.0)
        assert analysis.mean_faulty_entries == 0.0
        assert analysis.prob_usable_at_least(16) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VictimCacheFaultAnalysis(entries=0, cells_per_entry=512, pfail=0.001)
        with pytest.raises(ValueError):
            VictimCacheFaultAnalysis(entries=16, cells_per_entry=0, pfail=0.001)
        with pytest.raises(ValueError):
            VictimCacheFaultAnalysis(entries=16, cells_per_entry=512, pfail=2.0)
        analysis = paper_victim_analysis()
        with pytest.raises(ValueError):
            analysis.prob_usable_at_least(17)
        with pytest.raises(ValueError):
            analysis.conservative_usable_entries(0.0)
