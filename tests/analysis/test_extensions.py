"""Tests for the ECC and bit-interleaving extensions."""

import numpy as np
import pytest

from repro.analysis.ecc import (
    block_survival_probability,
    ecc_capacity_curve,
    ecc_storage_overhead,
    ecc_vs_block_disable,
    secded_check_bits,
    word_survival_probability,
)
from repro.analysis.interleaving import (
    clustered_interleaving_study,
    interleave_fault_matrix,
    uniform_fault_invariance,
)
from repro.faults import CacheGeometry

SMALL = CacheGeometry(size_bytes=8 * 1024, ways=8, block_bytes=64)


class TestSECDED:
    @pytest.mark.parametrize(
        "data_bits,expected", [(8, 5), (16, 6), (32, 7), (64, 8)]
    )
    def test_check_bits_standard_values(self, data_bits, expected):
        assert secded_check_bits(data_bits) == expected

    def test_rejects_bad_data_bits(self):
        with pytest.raises(ValueError):
            secded_check_bits(0)

    def test_word_survival_at_zero(self):
        assert word_survival_probability(0.0) == pytest.approx(1.0)

    def test_word_survival_decreasing(self):
        assert word_survival_probability(0.01) < word_survival_probability(0.001)

    def test_block_survival_is_word_power(self):
        p = word_survival_probability(0.002)
        assert block_survival_probability(0.002, 16) == pytest.approx(p**16)

    def test_storage_overhead_32bit(self):
        assert ecc_storage_overhead(32) == pytest.approx(7 / 32)

    def test_curve_monotone(self):
        curve = ecc_capacity_curve(np.linspace(0, 0.02, 10))
        assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_ecc_excellent_at_low_pfail_but_collapses(self):
        """The related-work claim: coding is fine at low fault densities but
        becomes ineffective at sub-Vcc-min rates."""
        assert block_survival_probability(0.0005) > 0.99
        assert block_survival_probability(0.02) < 0.5

    def test_head_to_head_summary(self, paper_geometry):
        summary = ecc_vs_block_disable(paper_geometry, 0.001)
        assert summary["ecc_capacity"] > summary["block_disable_capacity"]
        assert summary["ecc_capacity_net"] < summary["ecc_capacity"]
        assert summary["ecc_storage_overhead"] == pytest.approx(7 / 32)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            word_survival_probability(1.5)
        with pytest.raises(ValueError):
            block_survival_probability(0.001, 0)


class TestInterleaveMatrix:
    def test_shape_transform(self):
        faults = np.zeros((4, 12), dtype=bool)
        logical = interleave_fault_matrix(faults, 4)
        assert logical.shape == (16, 3)

    def test_ownership_striding(self):
        """Logical block j of a row owns physical cells j, j+degree, ..."""
        faults = np.zeros((1, 8), dtype=bool)
        faults[0, 2] = True  # belongs to logical block 2 (degree 4)
        faults[0, 6] = True  # also logical block 2 (6 = 2 + 4)
        logical = interleave_fault_matrix(faults, 4)
        assert logical[2].sum() == 2
        assert logical.sum() == 2

    def test_fault_count_preserved(self, rng):
        faults = rng.random((8, 64)) < 0.1
        logical = interleave_fault_matrix(faults, 4)
        assert logical.sum() == faults.sum()

    def test_rejects_bad_degree(self):
        faults = np.zeros((2, 10), dtype=bool)
        with pytest.raises(ValueError):
            interleave_fault_matrix(faults, 3)
        with pytest.raises(ValueError):
            interleave_fault_matrix(faults, 0)


class TestInterleavingStudy:
    def test_uniform_faults_are_invariant(self):
        contiguous, strided = uniform_fault_invariance(
            SMALL, 0.002, degree=4, trials=60, seed=0
        )
        assert contiguous == pytest.approx(strided, abs=0.02)

    def test_clustered_interleaving_hurts_block_disable(self):
        """The future-work hypothesis: under clustered faults, interleaving
        spreads clusters across blocks and lowers block-disable capacity."""
        result = clustered_interleaving_study(
            SMALL, 0.004, degree=4, cluster_size=16.0, trials=60, seed=1
        )
        assert result.interleaving_penalty > 0.0

    def test_clustering_beats_uniform_without_interleaving(self):
        result = clustered_interleaving_study(
            SMALL, 0.004, degree=4, cluster_size=16.0, trials=60, seed=2
        )
        assert result.capacity_non_interleaved > result.capacity_uniform_reference

    def test_interleaving_moves_capacity_toward_uniform(self):
        """Degree-d interleaving spreads each cluster over up to d blocks:
        capacity lands strictly between the non-interleaved clustered case
        and the fully decorrelated uniform case."""
        result = clustered_interleaving_study(
            SMALL, 0.004, degree=4, cluster_size=16.0, trials=60, seed=3
        )
        assert (
            result.capacity_uniform_reference
            < result.capacity_interleaved
            < result.capacity_non_interleaved
        )

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            clustered_interleaving_study(SMALL, 0.001, degree=7, trials=2)
