"""Tests for the bit-fix analytic model."""

import numpy as np
import pytest

from repro.analysis.bitfix import (
    bitfix_capacity,
    block_unrepairable_probability,
    pair_fault_probability,
    scheme_comparison,
    whole_cache_failure_probability,
)


class TestPairProbability:
    def test_zero(self):
        assert pair_fault_probability(0.0) == 0.0

    def test_two_cell_union(self):
        p = 0.001
        assert pair_fault_probability(p) == pytest.approx(1 - (1 - p) ** 2)

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            pair_fault_probability(1.5)


class TestBlockUnrepairable:
    def test_negligible_at_paper_pfail(self):
        """With a 10-pair budget, pfail = 0.001 virtually never defeats a
        block (256 pairs, each broken w.p. ~0.002)."""
        assert block_unrepairable_probability(0.001) < 1e-8

    def test_grows_with_pfail(self):
        assert block_unrepairable_probability(0.02) > block_unrepairable_probability(
            0.005
        )

    def test_zero_tolerance_is_any_pair(self):
        p_pair = pair_fault_probability(0.01)
        expected = 1 - (1 - p_pair) ** 256
        assert block_unrepairable_probability(
            0.01, pairs_tolerated=0
        ) == pytest.approx(expected, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            block_unrepairable_probability(0.001, data_bits=511)
        with pytest.raises(ValueError):
            block_unrepairable_probability(0.001, pairs_tolerated=-1)


class TestWholeCacheFailure:
    def test_much_more_robust_than_word_disable(self):
        """Bit-fix's cliff sits at far higher pfail than word-disabling's —
        the published qualitative comparison."""
        from repro.analysis.word_disable import (
            whole_cache_failure_probability as wd_pwcf,
        )

        for pfail in (0.001, 0.002, 0.004):
            assert whole_cache_failure_probability(pfail) < wd_pwcf(pfail)

    def test_monotone(self):
        values = [whole_cache_failure_probability(p) for p in (0.002, 0.006, 0.02)]
        assert values[0] < values[1] < values[2]

    def test_probability_range(self):
        for p in (0.0, 0.001, 0.05):
            assert 0.0 <= whole_cache_failure_probability(p) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            whole_cache_failure_probability(0.001, num_blocks=0)
        with pytest.raises(ValueError):
            whole_cache_failure_probability(0.001, sacrifice_fraction=1.5)


class TestCapacityAndComparison:
    def test_capacity_is_three_quarters(self):
        assert bitfix_capacity(0.001) == 0.75

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            bitfix_capacity(2.0)

    def test_three_scheme_chart(self, paper_geometry):
        pfails = np.linspace(0.0, 0.003, 7)
        chart = scheme_comparison(paper_geometry, pfails)
        assert set(chart) == {"block-disable", "word-disable", "bit-fix"}
        # At pfail ~ 0: block-disable 100%, bit-fix 75%, word-disable 50%.
        assert chart["block-disable"][0] == pytest.approx(1.0)
        assert chart["bit-fix"][0] == pytest.approx(0.75)
        assert chart["word-disable"][0] == pytest.approx(0.5)

    def test_word_disable_cliff_visible(self, paper_geometry):
        """By pfail = 0.004 word-disabling's expected capacity collapses
        (whole-cache failures dominate) while bit-fix holds 75%."""
        pfails = np.array([0.004])
        chart = scheme_comparison(paper_geometry, pfails)
        assert chart["word-disable"][0] < 0.25
        assert chart["bit-fix"][0] == pytest.approx(0.75, abs=0.01)
