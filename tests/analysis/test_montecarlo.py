"""Monte Carlo validation: the Section IV closed forms against sampled
fault maps.  These are the reproduction's ground-truth checks."""

import pytest

from repro.analysis.capacity_dist import capacity_distribution_for_geometry
from repro.analysis.incremental import incremental_word_disable_capacity
from repro.analysis.montecarlo import (
    MonteCarloEstimate,
    sample_capacity_distribution,
    sample_faulty_blocks,
    sample_faulty_blocks_fixed_n,
    sample_incremental_capacity,
    sample_victim_usable_entries,
    sample_whole_cache_failure,
)
from repro.analysis.urn import expected_faulty_blocks, expected_faulty_blocks_exact
from repro.analysis.victim import paper_victim_analysis
from repro.faults import CacheGeometry

# A smaller geometry keeps Monte Carlo cheap while preserving structure.
SMALL = CacheGeometry(size_bytes=8 * 1024, ways=8, block_bytes=64)


class TestEstimateContainer:
    def test_within_accepts_close_value(self):
        est = MonteCarloEstimate(mean=10.0, std_error=0.5, samples=100)
        assert est.within(10.8, sigmas=2.0)

    def test_within_rejects_far_value(self):
        est = MonteCarloEstimate(mean=10.0, std_error=0.5, samples=100)
        assert not est.within(15.0, sigmas=2.0)

    def test_needs_samples(self):
        import numpy as np

        from repro.analysis.montecarlo import _estimate

        with pytest.raises(ValueError):
            _estimate(np.array([]))


class TestEquation2Validation:
    def test_faulty_blocks_match_closed_form(self):
        est = sample_faulty_blocks(SMALL, 0.001, trials=120, seed=0)
        expected = expected_faulty_blocks(
            SMALL.num_blocks, SMALL.cells_per_block, 0.001
        )
        assert est.within(expected)

    def test_higher_pfail(self):
        est = sample_faulty_blocks(SMALL, 0.004, trials=120, seed=1)
        expected = expected_faulty_blocks(
            SMALL.num_blocks, SMALL.cells_per_block, 0.004
        )
        assert est.within(expected)


class TestEquation1Validation:
    def test_fixed_fault_count_matches_urn_model(self):
        n_faults = 80
        est = sample_faulty_blocks_fixed_n(SMALL, n_faults, trials=150, seed=2)
        expected = expected_faulty_blocks_exact(
            SMALL.num_blocks, SMALL.cells_per_block, n_faults
        )
        assert est.within(expected)

    def test_rejects_bad_fault_count(self):
        with pytest.raises(ValueError):
            sample_faulty_blocks_fixed_n(SMALL, -1)


class TestEquation3Validation:
    def test_capacity_moments(self):
        samples = sample_capacity_distribution(SMALL, 0.001, trials=200, seed=3)
        dist = capacity_distribution_for_geometry(SMALL, 0.001)
        assert samples.mean() == pytest.approx(dist.mean_capacity, abs=0.01)
        assert samples.std() == pytest.approx(dist.std_capacity, rel=0.5)


class TestEquation4Validation:
    def test_failure_rate_in_analytic_ballpark(self):
        """At an exaggerated pfail the whole-cache-failure rate is large
        enough to sample; compare with Eqs. 4-5."""
        from repro.analysis.word_disable import whole_cache_failure_probability

        pfail = 0.004
        est = sample_whole_cache_failure(SMALL, pfail, trials=300, seed=4)
        expected = whole_cache_failure_probability(
            pfail, num_blocks=SMALL.num_blocks
        )
        assert est.within(expected, sigmas=4.0)

    def test_tiling_validation(self):
        with pytest.raises(ValueError):
            sample_whole_cache_failure(SMALL, 0.001, trials=2, subblock_words=7)


class TestEquation6Validation:
    def test_incremental_capacity_matches(self):
        pfail = 0.002
        est = sample_incremental_capacity(SMALL, pfail, trials=100, seed=5)
        expected = incremental_word_disable_capacity(
            pfail, data_bits=SMALL.data_bits_per_block
        )
        assert est.within(expected)


class TestVictimValidation:
    def test_mean_faulty_victim_entries(self):
        est = sample_victim_usable_entries(16, 512, 0.001, trials=400, seed=6)
        expected = paper_victim_analysis(0.001).mean_usable_entries
        assert est.within(expected)
