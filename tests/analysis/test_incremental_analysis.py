"""Tests for incremental word-disabling capacity (Eq. 6, Fig. 7)."""

import numpy as np
import pytest

from repro.analysis.incremental import (
    block_pair_disabled_probability,
    block_pair_fault_free_probability,
    incremental_capacity_curve,
    incremental_capacity_for_geometry,
    incremental_word_disable_capacity,
)


class TestPairProbabilities:
    def test_fault_free_at_zero_pfail(self):
        assert block_pair_fault_free_probability(0.0) == 1.0

    def test_fault_free_paper_point(self):
        # 0.999^1024 ~ 0.359
        assert block_pair_fault_free_probability(0.001) == pytest.approx(0.359, abs=0.005)

    def test_disabled_negligible_at_low_pfail(self):
        assert block_pair_disabled_probability(0.001) < 1e-4

    def test_disabled_grows_with_pfail(self):
        assert block_pair_disabled_probability(0.01) > block_pair_disabled_probability(
            0.001
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            block_pair_fault_free_probability(-0.1)
        with pytest.raises(ValueError):
            block_pair_fault_free_probability(0.001, data_bits=0)
        with pytest.raises(ValueError):
            block_pair_disabled_probability(0.001, half_blocks_per_pair=0)


class TestEquation6Shape:
    """Fig. 7: starts above 50%, saturates toward 50%, then sinks below."""

    def test_full_capacity_at_zero(self):
        assert incremental_word_disable_capacity(0.0) == pytest.approx(1.0)

    def test_above_half_at_low_pfail(self):
        assert incremental_word_disable_capacity(0.0005) > 0.5
        assert incremental_word_disable_capacity(0.001) > 0.5

    def test_saturates_toward_half(self):
        capacity = incremental_word_disable_capacity(0.004)
        assert 0.47 < capacity < 0.55

    def test_below_half_at_high_pfail(self):
        assert incremental_word_disable_capacity(0.010) < 0.5

    def test_monotone_decreasing(self):
        pfails = np.linspace(0.0, 0.01, 30)
        curve = incremental_capacity_curve(pfails)
        assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_no_cliff(self):
        """Unlike plain word-disabling there is no whole-cache failure:
        capacity degrades smoothly (max step between adjacent points is
        small)."""
        pfails = np.linspace(0.0, 0.01, 100)
        curve = incremental_capacity_curve(pfails)
        steps = np.abs(np.diff(curve))
        assert steps.max() < 0.05

    def test_geometry_wrapper(self, paper_geometry):
        assert incremental_capacity_for_geometry(
            paper_geometry, 0.001
        ) == pytest.approx(incremental_word_disable_capacity(0.001))

    def test_capacity_identity(self):
        """Eq. 6 == pbpff + (1 - pbpff - pbpd)/2 exactly."""
        p = 0.003
        pbpff = block_pair_fault_free_probability(p)
        pbpd = block_pair_disabled_probability(p)
        assert incremental_word_disable_capacity(p) == pytest.approx(
            pbpff + (1 - pbpff - pbpd) / 2
        )
