"""Tests for the urn-model analysis (Eqs. 1-2) against the paper's numbers."""

import numpy as np
import pytest

from repro.analysis.urn import (
    expected_capacity_fraction,
    expected_faulty_blocks,
    expected_faulty_blocks_exact,
    expected_faulty_blocks_for_geometry,
    expected_faulty_blocks_hypergeometric,
    faulty_block_fraction,
    faulty_block_fraction_curve,
    pfail_for_capacity,
)


class TestEquation1:
    """Paper worked example: d=512, k=537, 275 faults -> 213 faulty blocks."""

    def test_paper_worked_example(self):
        assert expected_faulty_blocks_exact(512, 537, 275) == pytest.approx(
            213.0, abs=0.5
        )

    def test_matches_hypergeometric_derivation(self):
        for n in (1, 10, 275, 5000, 50_000):
            a = expected_faulty_blocks_exact(512, 537, n)
            b = expected_faulty_blocks_hypergeometric(512, 537, n)
            assert a == pytest.approx(b, rel=1e-9)

    def test_zero_faults(self):
        assert expected_faulty_blocks_exact(512, 537, 0) == 0.0

    def test_all_cells_faulty(self):
        assert expected_faulty_blocks_exact(512, 537, 512 * 537) == 512.0

    def test_single_fault_hits_one_block(self):
        assert expected_faulty_blocks_exact(512, 537, 1) == pytest.approx(1.0)

    def test_monotone_in_n(self):
        values = [expected_faulty_blocks_exact(512, 537, n) for n in range(0, 3000, 300)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_bounded_by_d_and_n(self):
        for n in (5, 100, 1000):
            u = expected_faulty_blocks_exact(512, 537, n)
            assert 0 <= u <= min(512, n)

    def test_rejects_out_of_range_n(self):
        with pytest.raises(ValueError):
            expected_faulty_blocks_exact(512, 537, -1)
        with pytest.raises(ValueError):
            expected_faulty_blocks_exact(512, 537, 512 * 537 + 1)

    def test_rejects_bad_dk(self):
        with pytest.raises(ValueError):
            expected_faulty_blocks_exact(0, 537, 1)
        with pytest.raises(ValueError):
            expected_faulty_blocks_exact(512, 0, 1)


class TestEquation2:
    """The fixed-pfail approximation the paper calls 'accurate for all
    cache configurations we examined'."""

    def test_paper_value_at_0_001(self):
        # 512 * (1 - 0.999^537) ~ 212.8
        assert expected_faulty_blocks(512, 537, 0.001) == pytest.approx(212.8, abs=0.2)

    def test_approximates_eq1(self):
        """Eq. 2 at pfail = n/(dk) tracks Eq. 1 with n draws."""
        n = 275
        exact = expected_faulty_blocks_exact(512, 537, n)
        approx = expected_faulty_blocks(512, 537, n / (512 * 537))
        assert approx == pytest.approx(exact, rel=0.01)

    def test_fraction_independent_of_d(self):
        assert faulty_block_fraction(537, 0.001) == pytest.approx(
            expected_faulty_blocks(512, 537, 0.001) / 512
        )

    def test_capacity_is_complement(self):
        assert expected_capacity_fraction(537, 0.001) == pytest.approx(
            1.0 - faulty_block_fraction(537, 0.001)
        )

    def test_geometry_wrapper(self, paper_geometry):
        assert expected_faulty_blocks_for_geometry(
            paper_geometry, 0.001
        ) == pytest.approx(expected_faulty_blocks(512, 537, 0.001))

    def test_curve_matches_scalar(self):
        pfails = np.array([0.0, 0.001, 0.005])
        curve = faulty_block_fraction_curve(537, pfails)
        for p, value in zip(pfails, curve):
            assert value == pytest.approx(faulty_block_fraction(537, float(p)))

    def test_curve_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            faulty_block_fraction_curve(537, [0.5, 1.5])


class TestCapacityThreshold:
    """Section IV-A headline: >50% capacity iff pfail < 0.0013."""

    def test_paper_threshold(self):
        threshold = pfail_for_capacity(537, 0.5)
        assert threshold == pytest.approx(0.00129, abs=0.00002)

    def test_threshold_is_fixed_point(self):
        threshold = pfail_for_capacity(537, 0.5)
        assert expected_capacity_fraction(537, threshold) == pytest.approx(0.5)

    def test_smaller_blocks_tolerate_more_faults(self):
        # k for 32B blocks < k for 128B blocks -> higher threshold.
        k32 = 32 * 8 + 25
        k128 = 128 * 8 + 25
        assert pfail_for_capacity(k32, 0.5) > pfail_for_capacity(k128, 0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            pfail_for_capacity(537, 0.0)
