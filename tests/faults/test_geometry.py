"""Tests for cache geometry: the paper's (d, k) accounting."""

import pytest

from repro.faults.geometry import (
    PAPER_L1_GEOMETRY,
    PAPER_L2_GEOMETRY,
    CacheGeometry,
)


class TestPaperRunningExample:
    """Section IV-A: d=512, k=537, dk=274,944 for 32KB/8-way/64B."""

    def test_num_blocks(self):
        assert PAPER_L1_GEOMETRY.num_blocks == 512

    def test_cells_per_block(self):
        # 64*8 data + 24 tag + 1 valid = 537
        assert PAPER_L1_GEOMETRY.cells_per_block == 537

    def test_total_cells(self):
        assert PAPER_L1_GEOMETRY.total_cells == 274_944

    def test_tag_bits(self):
        assert PAPER_L1_GEOMETRY.effective_tag_bits == 24

    def test_sets_and_index_bits(self):
        assert PAPER_L1_GEOMETRY.num_sets == 64
        assert PAPER_L1_GEOMETRY.index_bits == 6
        assert PAPER_L1_GEOMETRY.offset_bits == 6

    def test_words_per_block(self):
        assert PAPER_L1_GEOMETRY.words_per_block == 16

    def test_l2_shape(self):
        assert PAPER_L2_GEOMETRY.size_bytes == 2 * 1024 * 1024
        assert PAPER_L2_GEOMETRY.ways == 8
        assert PAPER_L2_GEOMETRY.num_blocks == 32768


class TestAddressSlicing:
    def test_set_index_extracts_middle_bits(self):
        g = PAPER_L1_GEOMETRY
        addr = (0b101010 << 6) | 0b111111  # set 42, offset 63
        assert g.set_index(addr) == 42

    def test_tag_strips_index_and_offset(self):
        g = PAPER_L1_GEOMETRY
        addr = (0xABC << 12) | (7 << 6) | 5
        assert g.tag(addr) == 0xABC

    def test_block_address(self):
        g = PAPER_L1_GEOMETRY
        assert g.block_address(0x1000) == 0x1000 >> 6

    def test_same_block_same_set(self):
        g = PAPER_L1_GEOMETRY
        assert g.set_index(0x2000) == g.set_index(0x2000 + 63)


class TestValidation:
    def test_rejects_non_pow2_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=3000)

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ValueError):
            CacheGeometry(block_bytes=48)

    def test_rejects_non_pow2_ways(self):
        with pytest.raises(ValueError):
            CacheGeometry(ways=3)

    def test_rejects_negative_tag_bits(self):
        with pytest.raises(ValueError):
            CacheGeometry(tag_bits=-1)

    def test_rejects_too_small_address(self):
        with pytest.raises(ValueError):
            CacheGeometry(address_bits=10)

    def test_explicit_tag_bits_override(self):
        g = CacheGeometry(tag_bits=30)
        assert g.effective_tag_bits == 30
        assert g.cells_per_block == 512 + 30 + 1


class TestDerivedGeometries:
    def test_halved_capacity_is_word_disable_shape(self):
        half = PAPER_L1_GEOMETRY.with_halved_capacity()
        # Table III: 16KB, 4-way, 64B, same set count.
        assert half.size_bytes == 16 * 1024
        assert half.ways == 4
        assert half.num_sets == PAPER_L1_GEOMETRY.num_sets

    def test_halving_direct_mapped_fails(self):
        g = CacheGeometry(size_bytes=4096, ways=1, block_bytes=64)
        with pytest.raises(ValueError):
            g.with_halved_capacity()

    def test_with_block_bytes_keeps_size_and_ways(self):
        g = PAPER_L1_GEOMETRY.with_block_bytes(32)
        assert g.size_bytes == PAPER_L1_GEOMETRY.size_bytes
        assert g.ways == PAPER_L1_GEOMETRY.ways
        assert g.num_blocks == 1024  # twice as many smaller blocks

    def test_describe_mentions_shape(self):
        text = PAPER_L1_GEOMETRY.describe()
        assert "32KB" in text
        assert "8-way" in text
        assert "64B" in text
