"""Tests for fault-map generation and queries."""

import gc
import warnings

import numpy as np
import pytest

from repro.faults import CacheGeometry, FaultMap, sample_fault_map_pairs


class TestGeneration:
    def test_shape_matches_geometry(self, paper_geometry):
        fm = FaultMap.generate(paper_geometry, 0.001, seed=0)
        assert fm.faults.shape == (512, 537)

    def test_deterministic_for_seed(self, paper_geometry):
        a = FaultMap.generate(paper_geometry, 0.001, seed=7)
        b = FaultMap.generate(paper_geometry, 0.001, seed=7)
        assert np.array_equal(a.faults, b.faults)

    def test_different_seeds_differ(self, paper_geometry):
        a = FaultMap.generate(paper_geometry, 0.001, seed=1)
        b = FaultMap.generate(paper_geometry, 0.001, seed=2)
        assert not np.array_equal(a.faults, b.faults)

    def test_zero_pfail_is_clean(self, paper_geometry):
        fm = FaultMap.generate(paper_geometry, 0.0, seed=0)
        assert fm.num_faulty_cells == 0

    def test_unity_pfail_is_all_faulty(self, small_geometry):
        fm = FaultMap.generate(small_geometry, 1.0, seed=0)
        assert fm.num_faulty_cells == small_geometry.total_cells

    def test_fault_count_near_expectation(self, paper_geometry):
        fm = FaultMap.generate(paper_geometry, 0.001, seed=3)
        expected = 0.001 * paper_geometry.total_cells  # ~275
        assert 0.5 * expected < fm.num_faulty_cells < 1.5 * expected

    @pytest.mark.parametrize("bad", [-0.5, 1.0001])
    def test_rejects_bad_pfail(self, paper_geometry, bad):
        with pytest.raises(ValueError):
            FaultMap.generate(paper_geometry, bad)

    def test_empty_constructor(self, paper_geometry):
        fm = FaultMap.empty(paper_geometry)
        assert fm.num_faulty_cells == 0
        assert fm.pfail == 0.0

    def test_shape_mismatch_rejected(self, paper_geometry):
        with pytest.raises(ValueError):
            FaultMap(paper_geometry, np.zeros((2, 2), dtype=bool))

    def test_non_bool_rejected(self, paper_geometry):
        bad = np.zeros((512, 537), dtype=np.int8)
        with pytest.raises(ValueError):
            FaultMap(paper_geometry, bad)


class TestClusteredGeneration:
    def test_expected_density_matches(self, paper_geometry):
        fm = FaultMap.generate_clustered(paper_geometry, 0.002, cluster_size=4.0, seed=5)
        expected = 0.002 * paper_geometry.total_cells
        assert 0.5 * expected < fm.num_faulty_cells <= 1.5 * expected

    def test_clustering_concentrates_faults(self, paper_geometry):
        """Same fault density, fewer distinct faulty blocks than uniform."""
        uniform_blocks = np.mean(
            [
                FaultMap.generate(paper_geometry, 0.002, seed=s).num_faulty_blocks()
                for s in range(10)
            ]
        )
        clustered_blocks = np.mean(
            [
                FaultMap.generate_clustered(
                    paper_geometry, 0.002, cluster_size=8.0, seed=s
                ).num_faulty_blocks()
                for s in range(10)
            ]
        )
        assert clustered_blocks < uniform_blocks

    def test_cluster_size_one_behaves_like_uniform(self, paper_geometry):
        fm = FaultMap.generate_clustered(paper_geometry, 0.001, cluster_size=1.0, seed=1)
        expected = 0.001 * paper_geometry.total_cells
        assert 0.3 * expected < fm.num_faulty_cells < 2.0 * expected

    def test_rejects_cluster_below_one(self, paper_geometry):
        with pytest.raises(ValueError):
            FaultMap.generate_clustered(paper_geometry, 0.001, cluster_size=0.5)


class TestBlockQueries:
    def test_faulty_block_mask_matches_counts(self, paper_fault_map):
        counts = paper_fault_map.block_fault_counts()
        mask = paper_fault_map.faulty_block_mask()
        assert np.array_equal(mask, counts > 0)

    def test_capacity_plus_faulty_fraction_is_one(self, paper_fault_map):
        d = paper_fault_map.geometry.num_blocks
        assert paper_fault_map.capacity_fraction() == pytest.approx(
            1.0 - paper_fault_map.num_faulty_blocks() / d
        )

    def test_tag_exclusion_reduces_faulty_blocks(self, paper_geometry):
        """Ignoring tag faults (the word-disable view) can only shrink the
        faulty-block set."""
        fm = FaultMap.generate(paper_geometry, 0.002, seed=11)
        assert fm.num_faulty_blocks(include_tag=False) <= fm.num_faulty_blocks(
            include_tag=True
        )

    def test_data_and_tag_views_partition_cells(self, paper_fault_map):
        g = paper_fault_map.geometry
        assert paper_fault_map.data_faults.shape == (512, g.data_bits_per_block)
        assert paper_fault_map.tag_faults.shape == (
            512,
            g.effective_tag_bits + g.valid_bits,
        )
        total = paper_fault_map.data_faults.sum() + paper_fault_map.tag_faults.sum()
        assert total == paper_fault_map.num_faulty_cells


class TestWordQueries:
    def test_word_counts_shape(self, paper_fault_map):
        counts = paper_fault_map.word_fault_counts()
        assert counts.shape == (512, 16)

    def test_word_counts_sum_to_data_faults(self, paper_fault_map):
        assert (
            paper_fault_map.word_fault_counts().sum()
            == paper_fault_map.data_faults.sum()
        )

    def test_faulty_words_consistent_with_mask(self, paper_fault_map):
        per_block = paper_fault_map.faulty_words_per_block()
        mask = paper_fault_map.faulty_word_mask()
        assert np.array_equal(per_block, mask.sum(axis=1))

    def test_tag_fault_does_not_mark_words(self, paper_geometry):
        faults = np.zeros((512, 537), dtype=bool)
        faults[3, 520] = True  # a tag cell
        fm = FaultMap(paper_geometry, faults)
        assert fm.faulty_words_per_block().sum() == 0
        assert fm.num_faulty_blocks(include_tag=True) == 1
        assert fm.num_faulty_blocks(include_tag=False) == 0


class TestSetWayStructure:
    def test_block_index_layout(self, paper_fault_map):
        g = paper_fault_map.geometry
        assert paper_fault_map.block_index(0, 0) == 0
        assert paper_fault_map.block_index(0, 7) == 7
        assert paper_fault_map.block_index(1, 0) == g.ways
        assert paper_fault_map.block_index(63, 7) == 511

    def test_block_index_bounds(self, paper_fault_map):
        with pytest.raises(IndexError):
            paper_fault_map.block_index(0, 8)
        with pytest.raises(IndexError):
            paper_fault_map.block_index(64, 0)

    def test_usable_ways_complement_faulty(self, paper_fault_map):
        usable = paper_fault_map.usable_ways_per_set()
        faulty = paper_fault_map.faulty_ways_by_set().sum(axis=1)
        assert np.array_equal(usable + faulty, np.full(64, 8))

    def test_usable_ways_sum_matches_capacity(self, paper_fault_map):
        assert paper_fault_map.usable_ways_per_set().sum() == (
            512 - paper_fault_map.num_faulty_blocks()
        )


class TestFaultMapPairs:
    def test_pair_count(self, paper_geometry):
        pairs = list(sample_fault_map_pairs(paper_geometry, 0.001, 5, seed=1))
        assert len(pairs) == 5

    def test_prefix_stability(self, paper_geometry):
        """Pair i is identical whether 3 or 10 pairs are drawn — quick and
        full experiment runs stay comparable."""
        three = list(sample_fault_map_pairs(paper_geometry, 0.001, 3, seed=9))
        ten = list(sample_fault_map_pairs(paper_geometry, 0.001, 10, seed=9))
        for a, b in zip(three, ten):
            assert np.array_equal(a.icache.faults, b.icache.faults)
            assert np.array_equal(a.dcache.faults, b.dcache.faults)

    def test_icache_and_dcache_maps_differ(self, paper_geometry):
        pair = next(iter(sample_fault_map_pairs(paper_geometry, 0.001, 1, seed=2)))
        assert not np.array_equal(pair.icache.faults, pair.dcache.faults)

    def test_pair_exposes_pfail(self, paper_geometry):
        pair = next(iter(sample_fault_map_pairs(paper_geometry, 0.001, 1, seed=2)))
        assert pair.pfail == 0.001

    def test_negative_count_rejected(self, paper_geometry):
        with pytest.raises(ValueError):
            list(sample_fault_map_pairs(paper_geometry, 0.001, -1))


class TestBatchGeneration:
    def test_batch_matches_sequential_draws(self, paper_geometry):
        """One (n, d, k) RNG call must consume the same PCG64 stream as n
        sequential generate() calls — the seed-stream lock the store keys
        and every historical fault draw rely on."""
        batched = FaultMap.generate_batch(
            paper_geometry, 0.001, 4, np.random.default_rng(123)
        )
        rng = np.random.default_rng(123)
        for map_ in batched:
            expected = FaultMap.generate(paper_geometry, 0.001, rng)
            assert np.array_equal(map_.faults, expected.faults)
            assert map_.pfail == 0.001

    def test_pairs_unchanged_by_batched_drawing(self, paper_geometry):
        """sample_fault_map_pairs now draws each pair as one (2, d, k)
        call; pair i must stay bit-identical to the original per-map
        formulation."""
        pairs = list(sample_fault_map_pairs(paper_geometry, 0.001, 3, seed=2010))
        for i, pair in enumerate(pairs):
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=2010, spawn_key=(i,))
            )
            icache = FaultMap.generate(paper_geometry, 0.001, rng)
            dcache = FaultMap.generate(paper_geometry, 0.001, rng)
            assert np.array_equal(pair.icache.faults, icache.faults)
            assert np.array_equal(pair.dcache.faults, dcache.faults)

    def test_empty_batch(self, paper_geometry):
        assert FaultMap.generate_batch(paper_geometry, 0.001, 0, seed=1) == []

    def test_invalid_arguments(self, paper_geometry):
        with pytest.raises(ValueError):
            FaultMap.generate_batch(paper_geometry, 1.5, 2)
        with pytest.raises(ValueError):
            FaultMap.generate_batch(paper_geometry, 0.001, -1)


class TestPersistenceHandle:
    def test_load_closes_the_npz_handle(self, paper_geometry, tmp_path):
        """FaultMap.load must not leak the NpzFile: loading many maps in a
        campaign would otherwise exhaust file descriptors."""
        path = tmp_path / "map.npz"
        original = FaultMap.generate(paper_geometry, 0.001, seed=7)
        original.save(str(path))
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            loaded = FaultMap.load(str(path))
            gc.collect()
        assert np.array_equal(loaded.faults, original.faults)
        assert loaded.geometry == original.geometry
