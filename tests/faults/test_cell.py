"""Tests for the SRAM cell library."""

import pytest

from repro.faults.cell import CellType, effective_pfail


class TestCellType:
    def test_6t_transistor_count(self):
        assert CellType.SRAM_6T.transistors == 6

    def test_10t_transistor_count(self):
        assert CellType.SRAM_10T.transistors == 10

    def test_6t_fails_below_vccmin(self):
        assert CellType.SRAM_6T.fails_below_vccmin

    def test_10t_robust_below_vccmin(self):
        assert not CellType.SRAM_10T.fails_below_vccmin

    def test_10t_relative_area_is_about_double(self):
        # The paper: "roughly twice the area overhead of a regular 6T cell".
        assert CellType.SRAM_10T.relative_area == pytest.approx(10 / 6)

    def test_6t_relative_area_is_unity(self):
        assert CellType.SRAM_6T.relative_area == 1.0


class TestEffectivePfail:
    def test_6t_passes_pfail_through(self):
        assert effective_pfail(CellType.SRAM_6T, 0.001) == 0.001

    def test_10t_never_fails(self):
        assert effective_pfail(CellType.SRAM_10T, 0.5) == 0.0

    def test_zero_pfail(self):
        assert effective_pfail(CellType.SRAM_6T, 0.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 1.5, 2.0])
    def test_rejects_non_probability(self, bad):
        with pytest.raises(ValueError):
            effective_pfail(CellType.SRAM_6T, bad)
