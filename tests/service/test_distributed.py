"""DistributedExecutor: partition-per-worker execution, merged at drain.

The claims under test mirror the pool executor's (serial byte-identity
with and without chaos, resilience seams intact) plus the partition
model's own: workers write to private store partitions, the parent
merges the union at drain, and a durable partition root is recoverable
with the ``store merge`` CLI if the parent dies before merging.
"""

import json
import os
from functools import lru_cache

import pytest

from repro.campaign.events import (
    PointResult,
    Progress,
    TaskRetried,
    WorkerCrashed,
)
from repro.campaign.resilience import RetryPolicy
from repro.campaign.session import Session
from repro.campaign.spec import RunnerSettings
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
)
from repro.service import DistributedExecutor
from repro.store import open_store, result_to_dict
from repro.store.tools import load_partitions, main as store_main, merge_stores, partition_dirs
from repro.testing import chaos

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip",),
)

CONFIGS = (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10)


def store_snapshot(session: Session) -> str:
    payload = {
        key: result_to_dict(session.store.get(key)) for key in session.store.keys()
    }
    return json.dumps(payload, sort_keys=True)


@lru_cache(maxsize=1)
def reference_snapshot() -> str:
    """The clean serial run every distributed run must reproduce."""
    session = Session(SETTINGS)
    session.run_all(session.spec(CONFIGS))
    return store_snapshot(session)


@pytest.fixture(autouse=True)
def clean_chaos_env(monkeypatch):
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    yield


class TestDistributedExecution:
    def test_matches_serial_byte_for_byte(self):
        session = Session(SETTINGS)
        executor = DistributedExecutor(workers=2)
        events = list(session.run(session.spec(CONFIGS), executor=executor))
        assert store_snapshot(session) == reference_snapshot()
        points = [e for e in events if isinstance(e, PointResult)]
        assert len(points) == 6
        # merged results carry the real payloads, keyed like serial ones
        for event in points:
            assert result_to_dict(event.result) == result_to_dict(
                session.store.get(event.key)
            )
        final = [e for e in events if isinstance(e, Progress)][-1]
        assert (final.done, final.total) == (6, 6)
        assert session.simulations_executed == 6
        assert not session.failures

    def test_acked_progress_is_truthful_before_the_merge(self):
        # Progress events stream while results are still partition-only;
        # their `done` counts acks, which monotonically reach the total.
        session = Session(SETTINGS)
        events = list(
            session.run(session.spec(CONFIGS), executor=DistributedExecutor(2))
        )
        done_counts = [e.done for e in events if isinstance(e, Progress)]
        assert done_counts == sorted(done_counts)
        assert done_counts[-1] == 6

    def test_temporary_partition_root_is_removed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            session = Session(SETTINGS)
            session.run_all(session.spec(CONFIGS), executor=DistributedExecutor(2))
            leftovers = [
                p for p in tmp_path.iterdir() if p.name.startswith("repro-partitions-")
            ]
            assert leftovers == []
        finally:
            tempfile.tempdir = None

    def test_durable_partition_dir_survives_the_run(self, tmp_path):
        root = tmp_path / "partitions"
        session = Session(SETTINGS)
        executor = DistributedExecutor(workers=2, partition_dir=root)
        session.run_all(session.spec(CONFIGS), executor=executor)
        assert store_snapshot(session) == reference_snapshot()
        # partitions are kept for inspection/recovery
        partitions = partition_dirs(os.fspath(root))
        assert partitions  # at least one worker wrote
        union = load_partitions(os.fspath(root))
        assert set(union) == set(session.store.keys())

    def test_chaos_crash_campaign_is_bit_identical(self, monkeypatch):
        # crash:0.4,seed:3 kills real workers mid-campaign (the rate/seed
        # the pool-executor chaos suite validates); rebuilds + epoch
        # re-rolls must drain to the exact serial store through the
        # partition merge.
        monkeypatch.setenv(chaos.CHAOS_ENV, "crash:0.4,seed:3")
        session = Session(SETTINGS)
        executor = DistributedExecutor(
            workers=2, retry=RetryPolicy(max_attempts=5, backoff_base=0.0)
        )
        events = list(session.run(session.spec(CONFIGS), executor=executor))
        monkeypatch.delenv(chaos.CHAOS_ENV)
        assert any(isinstance(e, WorkerCrashed) for e in events)
        assert any(isinstance(e, TaskRetried) for e in events)
        assert store_snapshot(session) == reference_snapshot()
        assert not session.failures


class TestWorkerSignalHygiene:
    def test_shed_parent_signal_plumbing_restores_defaults(self):
        # A forked worker inherits an asyncio parent's SIGTERM handler
        # and wakeup fd; keeping them would relay pool-shutdown signals
        # into the parent's event loop and stop the campaign server
        # mid-campaign.  The worker initializer must drop both.
        import signal
        import socket

        from repro.campaign.executors import _shed_parent_signal_plumbing

        a, b = socket.socketpair()
        originals = {
            signum: signal.getsignal(signum)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            a.setblocking(False)
            old_fd = signal.set_wakeup_fd(a.fileno())
            signal.signal(signal.SIGTERM, lambda *args: None)
            _shed_parent_signal_plumbing()
            assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
            assert signal.getsignal(signal.SIGINT) is signal.SIG_DFL
            # the wakeup fd is detached: a new set returns "none was set"
            assert signal.set_wakeup_fd(-1) == -1
            signal.set_wakeup_fd(old_fd if old_fd != a.fileno() else -1)
        finally:
            for signum, handler in originals.items():
                signal.signal(signum, handler)
            a.close()
            b.close()


class TestPartitionMerge:
    def _write_partition(self, root, name, records):
        store = open_store(os.fspath(root / name), backend="sharded")
        for key, result in records.items():
            store.put(key, result)
        store.close()

    def _some_results(self):
        session = Session(SETTINGS)
        session.run_all(session.spec((LV_BASELINE, LV_WORD)))
        return {key: session.store.get(key) for key in session.store.keys()}

    def test_load_partitions_unions_workers(self, tmp_path):
        results = self._some_results()
        keys = sorted(results)
        self._write_partition(tmp_path, "worker-0-1", {k: results[k] for k in keys[:1]})
        self._write_partition(tmp_path, "worker-0-2", {k: results[k] for k in keys[1:]})
        union = load_partitions(os.fspath(tmp_path))
        assert set(union) == set(keys)

    def test_load_partitions_empty_root(self, tmp_path):
        assert load_partitions(os.fspath(tmp_path)) == {}
        assert partition_dirs(os.fspath(tmp_path)) == []

    def test_merge_stores_copies_only_missing(self, tmp_path):
        results = self._some_results()
        keys = sorted(results)
        self._write_partition(tmp_path, "worker-0-1", results)
        dest = open_store(os.fspath(tmp_path / "dest"), backend="jsonl")
        dest.put(keys[0], results[keys[0]])  # already present
        copied = merge_stores(dest, [os.fspath(tmp_path / "worker-0-1")])
        assert copied == len(keys) - 1
        assert set(dest.keys()) == set(keys)
        dest.close()

    def test_store_merge_cli_recovers_a_crashed_merge(self, tmp_path, capsys):
        # A durable partition root whose parent died before merging:
        # `store merge DEST --from ROOT` folds the partitions in.
        root = tmp_path / "partitions"
        dest = tmp_path / "campaign"
        session = Session(SETTINGS)
        executor = DistributedExecutor(workers=2, partition_dir=root)
        session.run_all(session.spec(CONFIGS), executor=executor)
        code = store_main(
            ["merge", os.fspath(dest), "--from", os.fspath(root)]
        )
        assert code == 0
        merged = open_store(os.fspath(dest))
        try:
            with Session(SETTINGS, store=merged) as check:
                assert store_snapshot(check) == reference_snapshot()
        finally:
            merged.close()

    def test_store_merge_cli_no_partitions_fails(self, tmp_path, capsys):
        code = store_main(
            [
                "merge",
                os.fspath(tmp_path / "dest"),
                "--from",
                os.fspath(tmp_path / "empty"),
            ]
        )
        assert code == 1
