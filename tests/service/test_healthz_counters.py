"""``GET /healthz`` coalescing/claim counters.

The server partitions every campaign's pending keys into store hits,
claims, and awaited in-flight keys; ``/healthz`` serves the running
totals (``store_hits``, ``claimed``, ``awaited``, ``reclaim_rounds``)
so remote clients — the predict loop's economics reporting among them —
can observe how effective dedup is without server-side logs.  These
tests pin the arithmetic: claims count owned work exactly once, awaited
counts keys served off another client's claim (forced deterministically
with a gated executor), and the re-claim round stays at zero on healthy
paths.
"""

import json
import threading
import time
import urllib.request

from repro.campaign.executors import SerialExecutor
from repro.campaign.session import Session
from repro.campaign.spec import CampaignSpec, RunnerSettings
from repro.experiments.configs import LV_BASELINE, LV_BLOCK, LV_WORD
from repro.service.server import ServerThread

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip",),
)

SPEC = CampaignSpec.from_settings(SETTINGS, (LV_BASELINE, LV_WORD, LV_BLOCK))
N_KEYS = 4  # baseline 1 + word 1 + block 2


def healthz(server) -> dict:
    with urllib.request.urlopen(f"{server.url}/healthz") as response:
        return json.load(response)


class TestCounters:
    def test_fresh_server_serves_zeroed_counters(self):
        with Session(SETTINGS) as session, ServerThread(session) as server:
            health = healthz(server)
            for counter in ("store_hits", "claimed", "awaited", "reclaim_rounds"):
                assert health[counter] == 0

    def test_claimed_counts_owned_work_exactly_once(self):
        with Session(SETTINGS) as session, ServerThread(session) as server:
            remote = Session.connect(server.url)
            remote.run_all(SPEC)
            health = healthz(server)
            assert health["claimed"] == N_KEYS
            assert health["awaited"] == 0
            assert health["store_hits"] == 0
            assert health["reclaim_rounds"] == 0
            # a re-submit is pure store hits: nothing new claimed
            remote.run_all(SPEC)
            health = healthz(server)
            assert health["claimed"] == N_KEYS
            assert health["store_hits"] == N_KEYS

    def test_awaited_counts_keys_served_off_another_clients_claim(self):
        # Deterministic forced overlap (same construction as the server
        # suite's await test): client A's executor blocks until both
        # campaigns are registered, so B provably finds every key of the
        # identical spec in flight — B claims nothing and awaits all.
        with Session(SETTINGS) as session:
            server_box: list = []

            class GatedSerial(SerialExecutor):
                def run(self, sess, plan):
                    deadline = time.monotonic() + 30
                    while (
                        server_box[0].server.stats["campaigns"] < 2
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.01)
                    yield from super().run(sess, plan)

            with ServerThread(session, executor=GatedSerial()) as server:
                server_box.append(server)

                def client() -> None:
                    Session.connect(server.url).run_all(SPEC)

                first = threading.Thread(target=client)
                second = threading.Thread(target=client)
                first.start()
                time.sleep(0.3)  # let A plan and claim before B arrives
                second.start()
                first.join(timeout=120)
                second.join(timeout=120)

                health = healthz(server)
                assert health["claimed"] == N_KEYS  # A's claim, counted once
                assert health["awaited"] == N_KEYS  # B waited on all of them
                assert health["reclaim_rounds"] == 0  # the claimer delivered
                assert health["simulations_executed"] == N_KEYS
