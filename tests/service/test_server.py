"""The campaign server: wire behaviour, coalescing, multi-client dedup.

The acceptance claims under test:

* a remote campaign is **complete and byte-identical** — every distinct
  key of the client's spec arrives as exactly one ``PointResult`` whose
  payload equals a standalone local run's;
* two concurrent clients with overlapping specs each get full streams
  while the server executes strictly fewer simulations than the sum of
  standalone runs (the coalescing contract);
* keys another client is already simulating are *awaited*, never
  re-simulated (forced deterministically with a gated executor);
* mixed-fidelity clients get derived sessions over the shared store;
* terminal failures stream as ``TaskFailed`` and surface client-side as
  ``CampaignError`` — same semantics as local ``Session.run``.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.campaign.events import PlanReady, PointResult, Progress, TaskFailed
from repro.campaign.executors import PoolExecutor, SerialExecutor
from repro.campaign.resilience import CampaignError, RetryPolicy
from repro.campaign.session import Session
from repro.campaign.spec import CampaignSpec, RunnerSettings
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
)
from repro.service.client import RemoteCampaignError, RemoteSession, connect
from repro.service.server import CampaignServer, ServerThread
from repro.store import result_to_dict
from repro.testing import chaos

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip",),
)

SPEC_A = CampaignSpec.from_settings(
    SETTINGS, (LV_BASELINE, LV_WORD, LV_BLOCK), figure="A"
)
SPEC_B = CampaignSpec.from_settings(
    SETTINGS, (LV_BASELINE, LV_WORD, LV_BLOCK_V10), figure="B"
)


@pytest.fixture(autouse=True)
def clean_chaos_env(monkeypatch):
    monkeypatch.delenv(chaos.CHAOS_ENV, raising=False)
    yield


def standalone_results(spec: CampaignSpec) -> dict:
    """key -> result dict of a clean local run (the byte-identity
    reference every remote stream must match)."""
    with Session(SETTINGS) as session:
        session.run_all(spec)
        return {
            key: result_to_dict(session.store.get(key))
            for key in spec.task_keys()
        }


def stream_points(events) -> dict:
    return {
        e.key: result_to_dict(e.result)
        for e in events
        if isinstance(e, PointResult)
    }


class TestWireBasics:
    def test_healthz_and_errors(self):
        with Session(SETTINGS) as session, ServerThread(session) as server:
            health = json.loads(
                urllib.request.urlopen(f"{server.url}/healthz").read()
            )
            assert health["campaigns"] == 0
            assert health["store"] == "memory"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope")
            assert excinfo.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    urllib.request.Request(
                        f"{server.url}/campaign",
                        data=b'{"not": "a spec"}',
                        method="POST",
                    )
                )
            assert excinfo.value.code == 400

    def test_client_url_parsing(self):
        remote = RemoteSession("http://127.0.0.1:8631")
        assert (remote.host, remote.port) == ("127.0.0.1", 8631)
        assert connect("127.0.0.1:8631").port == 8631
        with pytest.raises(ValueError):
            RemoteSession("https://127.0.0.1:8631")
        with pytest.raises(ValueError):
            RemoteSession("http://")

    def test_unreachable_server(self):
        remote = RemoteSession("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(RemoteCampaignError):
            list(remote.run(SPEC_A))


class TestSingleClient:
    def test_stream_is_complete_and_byte_identical(self):
        reference = standalone_results(SPEC_A)
        with Session(SETTINGS) as session, ServerThread(session) as server:
            with Session.connect(server.url) as remote:
                events = list(remote.run(SPEC_A))
            assert isinstance(events[0], PlanReady)
            assert events[0].plan.spec == SPEC_A
            assert stream_points(events) == reference
            final = [e for e in events if isinstance(e, Progress)][-1]
            assert (final.done, final.total) == (4, 4)
            assert remote.last_done["simulations_executed"] == 4
            assert remote.last_done["failures"] == 0

    def test_second_run_is_pure_store_hits(self):
        with Session(SETTINGS) as session, ServerThread(session) as server:
            remote = Session.connect(server.url)
            first = stream_points(remote.run(SPEC_A))
            second = stream_points(remote.run(SPEC_A))
            assert second == first
            assert remote.last_done["simulations_executed"] == 0
            assert remote.last_done["server_simulations"] == 4
            assert remote.healthz()["store_hits"] == 4

    def test_run_all_returns_the_plan(self):
        with Session(SETTINGS) as session, ServerThread(session) as server:
            plan = Session.connect(server.url).run_all(SPEC_A)
            assert plan.spec == SPEC_A
            assert plan.total_points == 4

    def test_mixed_fidelity_client_gets_a_derived_session(self):
        # A spec at a different fidelity must not be rejected (local
        # Session.run would demand .derived()): the server derives one
        # over the shared store and trace cache.
        small = RunnerSettings(
            n_instructions=1_500,
            warmup_instructions=500,
            n_fault_maps=2,
            benchmarks=("gzip",),
        )
        spec = CampaignSpec.from_settings(small, (LV_BASELINE, LV_BLOCK))
        with Session(SETTINGS) as session, ServerThread(session) as server:
            remote = Session.connect(server.url)
            points = stream_points(remote.run(spec))
            assert set(points) == set(spec.task_keys())
            assert remote.last_done["simulations_executed"] == 3
            # the derived session is cached: a re-submit is pure hits
            stream_points(remote.run(spec))
            assert remote.last_done["simulations_executed"] == 0


class TestConcurrentClients:
    def test_overlapping_specs_each_complete_total_deduplicated(self):
        ref_a = standalone_results(SPEC_A)
        ref_b = standalone_results(SPEC_B)
        standalone_total = len(ref_a) + len(ref_b)  # 4 + 4
        with Session(SETTINGS) as session, ServerThread(session) as server:
            out: dict = {}

            def client(name: str, spec: CampaignSpec) -> None:
                remote = Session.connect(server.url)
                out[name] = (stream_points(remote.run(spec)), remote.last_done)

            threads = [
                threading.Thread(target=client, args=("A", SPEC_A)),
                threading.Thread(target=client, args=("B", SPEC_B)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            points_a, done_a = out["A"]
            points_b, done_b = out["B"]
            # complete streams: one PointResult per distinct spec key
            assert points_a == ref_a
            assert points_b == ref_b
            # overlap executed once: strictly fewer simulations than the
            # sum of standalone runs, and the union exactly once
            total = done_a["simulations_executed"] + done_b["simulations_executed"]
            assert total < standalone_total
            assert total == len(set(ref_a) | set(ref_b)) == 6
            assert session.simulations_executed == 6

    def test_inflight_keys_are_awaited_not_resimulated(self):
        # Deterministic forced overlap: client A's executor blocks until
        # the server has accepted both campaigns, so B provably finds
        # A's keys in flight (identical specs: B claims nothing).
        with Session(SETTINGS) as session:
            server_box: list = []

            class GatedSerial(SerialExecutor):
                def run(self, sess, plan):
                    deadline = time.monotonic() + 30
                    while (
                        server_box[0].server.stats["campaigns"] < 2
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.01)
                    yield from super().run(sess, plan)

            with ServerThread(session, executor=GatedSerial()) as server:
                server_box.append(server)
                out: dict = {}

                def client(name: str) -> None:
                    remote = Session.connect(server.url)
                    out[name] = (
                        stream_points(remote.run(SPEC_A)),
                        remote.last_done,
                    )

                first = threading.Thread(target=client, args=("A",))
                second = threading.Thread(target=client, args=("B",))
                first.start()
                time.sleep(0.3)  # let A plan and claim before B arrives
                second.start()
                first.join(timeout=120)
                second.join(timeout=120)
                assert out["A"][0] == out["B"][0] == standalone_results(SPEC_A)
                executed = [d["simulations_executed"] for _, d in out.values()]
                assert sorted(executed) == [0, 4]  # one simulated, one shared
                stats = server.server.stats
                assert stats["simulations_executed"] == 4
                assert stats["shared_hits"] + stats["store_hits"] >= 4


class TestFailureSurface:
    def test_terminal_failures_reach_the_client_as_campaign_error(
        self, monkeypatch
    ):
        # poison:0.2,seed:11 marks exactly one of this campaign's six
        # keys (validated by the pool-executor chaos suite): it fails in
        # workers and in the parent replay, so the client must see one
        # TaskFailed and CampaignError — while the five healthy points
        # still stream.
        monkeypatch.setenv(chaos.CHAOS_ENV, "poison:0.2,seed:11")
        spec = CampaignSpec.from_settings(
            SETTINGS, (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10)
        )
        with Session(SETTINGS) as session:
            executor = PoolExecutor(
                2, retry=RetryPolicy(max_attempts=2, backoff_base=0.0)
            )
            with ServerThread(session, executor=executor) as server:
                remote = Session.connect(server.url)
                events: list = []
                with pytest.raises(CampaignError) as excinfo:
                    for event in remote.run(spec):
                        events.append(event)
                assert len(excinfo.value.failures) == 1
                assert "poison" in excinfo.value.failures[0].error
                failed = [e for e in events if isinstance(e, TaskFailed)]
                assert len(failed) == 1
                points = stream_points(events)
                assert len(points) == 5
                assert failed[0].key not in points
                assert remote.last_done["failures"] == 1


class TestServerInternals:
    def test_session_for_reuses_the_base_session(self):
        with Session(SETTINGS) as session:
            server = CampaignServer(session)
            assert server._session_for(SPEC_A) is session
            small = RunnerSettings(
                n_instructions=1_500,
                warmup_instructions=500,
                n_fault_maps=2,
                benchmarks=("gzip",),
            )
            spec = CampaignSpec.from_settings(small, (LV_BASELINE,))
            derived = server._session_for(spec)
            assert derived is not session
            assert derived.store is session.store
            assert server._session_for(spec) is derived  # cached
