"""Tests for the reproduction scorecard and workload characterization."""

import pytest

from repro.experiments.characterize import behaviour_space_check, characterization_table
from repro.experiments.report import (
    ReportLine,
    analytical_lines,
    reproduction_report,
    simulation_lines,
)
from repro.experiments.runner import ExperimentRunner, RunnerSettings


class TestReportLine:
    def test_pass_within_tolerance(self):
        line = ReportLine("src", "claim", 10.0, 10.4, 0.05)
        assert line.passed

    def test_miss_outside_tolerance(self):
        line = ReportLine("src", "claim", 10.0, 12.0, 0.05)
        assert not line.passed

    def test_exact_requirement(self):
        assert ReportLine("s", "c", 100, 100, 0.0).passed
        assert not ReportLine("s", "c", 100, 101, 0.0).passed

    def test_zero_paper_value(self):
        assert ReportLine("s", "c", 0.0, 0.005, 0.01).passed

    def test_render_contains_status(self):
        text = ReportLine("src", "claim", 1.0, 1.0, 0.1).render()
        assert "PASS" in text
        assert "claim" in text


class TestAnalyticalScorecard:
    def test_every_analytical_claim_passes(self):
        for line in analytical_lines():
            assert line.passed, line.render()

    def test_report_without_runner(self):
        text = reproduction_report()
        assert "Reproduction scorecard" in text
        assert "MISS" not in text
        assert "claims reproduced" in text


class TestSimulationScorecard:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(
            RunnerSettings(
                n_instructions=15_000,
                n_fault_maps=2,
                warmup_instructions=5_000,
                benchmarks=("crafty", "swim", "gzip", "mcf"),
            )
        )

    def test_simulation_lines_have_expected_claims(self, runner):
        lines = simulation_lines(runner)
        claims = [line.claim for line in lines]
        assert any("word-disabling average penalty" in c for c in claims)
        assert any("crafty" in c for c in claims)

    def test_full_report_renders(self, runner):
        text = reproduction_report(runner)
        assert "Fig 8" in text
        assert "claims reproduced" in text


class TestCharacterization:
    @pytest.fixture(scope="class")
    def table(self):
        return characterization_table(
            benchmarks=("crafty", "swim", "mcf", "eon", "gcc", "twolf"),
            n_instructions=12_000,
            warmup=5_000,
        )

    def test_all_series_present(self, table):
        for series in ("ipc", "l1d_miss", "l1i_miss", "l2_miss", "mispredict"):
            assert series in table.series

    def test_values_in_valid_ranges(self, table):
        for name in ("l1d_miss", "l1i_miss", "l2_miss", "mispredict"):
            for value in table.series[name]:
                assert 0.0 <= value <= 1.0
        for value in table.series["ipc"]:
            assert 0.0 < value <= 4.0

    def test_mcf_is_memory_bound(self, table):
        i = table.index.index("mcf")
        assert table.series["l1d_miss"][i] > 0.3
        assert table.series["ipc"][i] < 0.5

    def test_eon_is_cache_friendly(self, table):
        i = table.index.index("eon")
        assert table.series["l1d_miss"][i] < 0.05

    def test_behaviour_space_spanned(self, table):
        flags = behaviour_space_check(table)
        for label in ("cache_friendly", "capacity_bound", "code_heavy"):
            assert flags[label], f"suite does not span {label}"
