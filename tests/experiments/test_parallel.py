"""Tests for the streaming parallel simulation driver."""

import os

import pytest

from repro.experiments.configs import LV_BASELINE, LV_BLOCK, LV_BLOCK_V6, LV_WORD
from repro.experiments.parallel import (
    adaptive_chunksize,
    pending_tasks,
    plan_batches,
    plan_tasks,
    prefill_cache,
    run_studies,
)
from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.store import DiskStore

SMALL = RunnerSettings(
    n_instructions=3000,
    n_fault_maps=2,
    warmup_instructions=1000,
    benchmarks=("crafty", "swim"),
)


class TestPlanning:
    def test_task_counts(self):
        tasks = plan_tasks(SMALL, (LV_BASELINE, LV_WORD, LV_BLOCK))
        # 2 benchmarks x (1 baseline + 1 word + 2 block maps) = 8.
        assert len(tasks) == 8

    def test_deduplication(self):
        tasks = plan_tasks(SMALL, (LV_BASELINE, LV_BASELINE))
        assert len(tasks) == 2

    def test_fault_free_configs_get_none_index(self):
        tasks = plan_tasks(SMALL, (LV_WORD,))
        assert all(index is None for (_, _, index) in tasks)

    def test_fault_configs_enumerate_maps(self):
        tasks = plan_tasks(SMALL, (LV_BLOCK,))
        indices = sorted(index for (b, _, index) in tasks if b == "crafty")
        assert indices == [0, 1]


class TestPrefill:
    def test_single_process_fallback(self):
        runner = ExperimentRunner(SMALL)
        executed = prefill_cache(runner, (LV_BASELINE, LV_BLOCK), workers=1)
        assert executed == 6  # 2 baseline + 4 block runs
        # Cache hit: a second call does nothing.
        assert prefill_cache(runner, (LV_BASELINE, LV_BLOCK), workers=1) == 0

    def test_parallel_matches_single_process(self):
        """Two workers produce bit-identical results to in-process runs."""
        serial = ExperimentRunner(SMALL)
        parallel = ExperimentRunner(SMALL)
        prefill_cache(serial, (LV_BASELINE, LV_BLOCK), workers=1)
        executed = prefill_cache(parallel, (LV_BASELINE, LV_BLOCK), workers=2)
        assert executed == 6
        for bench in SMALL.benchmarks:
            assert (
                serial.run(bench, LV_BASELINE).cycles
                == parallel.run(bench, LV_BASELINE).cycles
            )
            for m in range(SMALL.n_fault_maps):
                assert (
                    serial.run(bench, LV_BLOCK, m).cycles
                    == parallel.run(bench, LV_BLOCK, m).cycles
                )

    def test_figures_read_from_prefilled_cache(self):
        runner = ExperimentRunner(SMALL)
        prefill_cache(runner, (LV_BASELINE, LV_WORD, LV_BLOCK), workers=2)
        series = runner.normalized_series(LV_BLOCK, LV_BASELINE)
        assert len(series.average) == 2

    def test_parallel_streams_into_disk_store(self, tmp_path):
        """Workers' results land in the persistent store and are
        bit-identical to the serial path."""
        serial = ExperimentRunner(SMALL)
        prefill_cache(serial, (LV_BASELINE, LV_BLOCK), workers=1)
        parallel = ExperimentRunner(SMALL, store=DiskStore(tmp_path))
        assert prefill_cache(parallel, (LV_BASELINE, LV_BLOCK), workers=2) == 6
        reopened = ExperimentRunner(SMALL, store=DiskStore(tmp_path))
        for bench in SMALL.benchmarks:
            assert (
                reopened.run(bench, LV_BASELINE)
                == serial.run(bench, LV_BASELINE)
            )
            for m in range(SMALL.n_fault_maps):
                assert (
                    reopened.run(bench, LV_BLOCK, m)
                    == serial.run(bench, LV_BLOCK, m)
                )
        assert reopened.simulations_executed == 0

    def test_progress_callback_reaches_total(self):
        runner = ExperimentRunner(SMALL)
        calls: list[tuple[int, int]] = []
        prefill_cache(
            runner,
            (LV_BASELINE, LV_BLOCK),
            workers=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls
        assert all(total == 6 for _, total in calls)
        dones = [done for done, _ in calls]
        assert dones == sorted(dones)
        assert dones[-1] == 6

    def test_prefill_counts_executions_on_runner(self):
        runner = ExperimentRunner(SMALL)
        prefill_cache(runner, (LV_BASELINE, LV_BLOCK), workers=2)
        assert runner.simulations_executed == 6

    def test_pending_tasks_skips_stored_results(self):
        runner = ExperimentRunner(SMALL)
        runner.run("crafty", LV_BASELINE)
        tasks = pending_tasks(runner, (LV_BASELINE, LV_BLOCK))
        assert ("crafty", LV_BASELINE, None) not in tasks
        assert len(tasks) == 5


class TestBatchPlanning:
    def test_groups_by_benchmark_and_physical_config(self):
        runner = ExperimentRunner(SMALL)
        batches = plan_batches(runner, (LV_BASELINE, LV_BLOCK, LV_BLOCK_V6))
        # Per benchmark: one singleton baseline batch plus one batch per
        # fault-dependent config holding both map lanes.
        assert len(batches) == 2 * 3
        map_batches = [b for b in batches if b[0][2] is not None]
        assert all(len(b) == SMALL.n_fault_maps for b in map_batches)
        for batch in map_batches:
            assert len({(t[0], t[1]) for t in batch}) == 1

    def test_stored_lanes_excluded_before_grouping(self):
        runner = ExperimentRunner(SMALL)
        runner.run("crafty", LV_BLOCK, 0)
        batches = plan_batches(runner, (LV_BLOCK,))
        crafty = [b for b in batches if b[0][0] == "crafty"]
        assert len(crafty) == 1
        assert [t[2] for t in crafty[0]] == [1]

    def test_lane_width_splits_groups(self):
        runner = ExperimentRunner(SMALL, lanes=1)
        batches = plan_batches(runner, (LV_BLOCK,))
        assert all(len(b) == 1 for b in batches)
        assert sum(len(b) for b in batches) == 4  # 2 benchmarks x 2 maps

    def test_fault_independent_tasks_stay_singletons(self):
        runner = ExperimentRunner(SMALL)
        batches = plan_batches(runner, (LV_BASELINE, LV_WORD))
        assert all(len(b) == 1 for b in batches)
        assert sum(len(b) for b in batches) == 4


class TestChunking:
    def test_tiny_campaigns_checkpoint_every_task(self):
        assert adaptive_chunksize(4, 8) == 1
        assert adaptive_chunksize(8, 8) == 1

    def test_large_campaigns_amortise_dispatch(self):
        assert adaptive_chunksize(10_000, 8) == 8

    def test_mid_sized_campaigns_scale(self):
        assert 1 <= adaptive_chunksize(100, 8) <= 8


class TestStudies:
    def test_run_studies_parallel_matches_serial(self):
        # Two studies so workers=min(2, len) actually takes the pool branch.
        names = ["abl-l2", "abl-energy"]
        serial = run_studies(names, workers=1)
        parallel = run_studies(names, workers=2)
        assert serial.keys() == parallel.keys()
        for name in names:
            assert serial[name].series == parallel[name].series
            assert serial[name].index == parallel[name].index


def test_prefill_aggregates_worker_trace_counters(tmp_path):
    """The parent's trace counters must reflect what the pool's workers
    generated/loaded from a shared trace cache."""
    settings = RunnerSettings(
        n_instructions=1_500,
        warmup_instructions=300,
        n_fault_maps=1,
        benchmarks=("gzip", "crafty"),
    )
    cache_dir = os.fspath(tmp_path)
    first = ExperimentRunner(settings, trace_cache=cache_dir)
    prefill_cache(first, (LV_BASELINE,), workers=2)
    assert first.traces.generated + first.traces.loaded >= 2

    second = ExperimentRunner(settings, trace_cache=cache_dir)
    prefill_cache(second, (LV_BASELINE,), workers=2)
    # Store is fresh (memory), so simulations rerun — but every trace must
    # now come from the shared cache.
    assert second.traces.generated == 0
    assert second.traces.loaded == 2
