"""Tests for the parallel simulation driver."""

import pytest

from repro.experiments.configs import LV_BASELINE, LV_BLOCK, LV_WORD
from repro.experiments.parallel import plan_tasks, prefill_cache
from repro.experiments.runner import ExperimentRunner, RunnerSettings

SMALL = RunnerSettings(
    n_instructions=3000,
    n_fault_maps=2,
    warmup_instructions=1000,
    benchmarks=("crafty", "swim"),
)


class TestPlanning:
    def test_task_counts(self):
        tasks = plan_tasks(SMALL, (LV_BASELINE, LV_WORD, LV_BLOCK))
        # 2 benchmarks x (1 baseline + 1 word + 2 block maps) = 8.
        assert len(tasks) == 8

    def test_deduplication(self):
        tasks = plan_tasks(SMALL, (LV_BASELINE, LV_BASELINE))
        assert len(tasks) == 2

    def test_fault_free_configs_get_none_index(self):
        tasks = plan_tasks(SMALL, (LV_WORD,))
        assert all(index is None for (_, _, index) in tasks)

    def test_fault_configs_enumerate_maps(self):
        tasks = plan_tasks(SMALL, (LV_BLOCK,))
        indices = sorted(index for (b, _, index) in tasks if b == "crafty")
        assert indices == [0, 1]


class TestPrefill:
    def test_single_process_fallback(self):
        runner = ExperimentRunner(SMALL)
        executed = prefill_cache(runner, (LV_BASELINE, LV_BLOCK), workers=1)
        assert executed == 6  # 2 baseline + 4 block runs
        # Cache hit: a second call does nothing.
        assert prefill_cache(runner, (LV_BASELINE, LV_BLOCK), workers=1) == 0

    def test_parallel_matches_single_process(self):
        """Two workers produce bit-identical results to in-process runs."""
        serial = ExperimentRunner(SMALL)
        parallel = ExperimentRunner(SMALL)
        prefill_cache(serial, (LV_BASELINE, LV_BLOCK), workers=1)
        executed = prefill_cache(parallel, (LV_BASELINE, LV_BLOCK), workers=2)
        assert executed == 6
        for bench in SMALL.benchmarks:
            assert (
                serial.run(bench, LV_BASELINE).cycles
                == parallel.run(bench, LV_BASELINE).cycles
            )
            for m in range(SMALL.n_fault_maps):
                assert (
                    serial.run(bench, LV_BLOCK, m).cycles
                    == parallel.run(bench, LV_BLOCK, m).cycles
                )

    def test_figures_read_from_prefilled_cache(self):
        runner = ExperimentRunner(SMALL)
        prefill_cache(runner, (LV_BASELINE, LV_WORD, LV_BLOCK), workers=2)
        series = runner.normalized_series(LV_BLOCK, LV_BASELINE)
        assert len(series.average) == 2
