"""Edge-case tests for the FigureResult container and its rendering."""

import pytest

from repro.experiments.results import FigureResult


class TestRendering:
    def test_float_index_formatting(self):
        result = FigureResult("f", "t", "pfail", [0.001, 0.002])
        result.add_series("capacity", [0.58, 0.34])
        text = result.to_text()
        assert "0.0010" in text
        assert "0.5800" in text

    def test_string_index_passthrough(self):
        result = FigureResult("f", "t", "bench", ["crafty", "swim"])
        result.add_series("perf", [0.7, 1.0])
        assert "crafty" in result.to_text()

    def test_custom_float_format(self):
        result = FigureResult("f", "t", "x", [1.0])
        result.add_series("s", [0.123456])
        assert "0.12" in result.to_text("{:.2f}")

    def test_empty_series_table(self):
        result = FigureResult("f", "t", "x", [])
        result.add_series("s", [])
        text = result.to_text()
        assert "f:" in text  # header renders even with no rows

    def test_column_alignment(self):
        """Every rendered row has the same display width."""
        result = FigureResult("f", "t", "benchmark", ["a", "longername"])
        result.add_series("series-with-long-name", [1.0, 2.0])
        lines = result.to_text().splitlines()
        rows = lines[1:]  # skip the title line
        widths = {len(row) for row in rows}
        assert len(widths) == 1

    def test_notes_and_reference_optional(self):
        result = FigureResult("f", "t", "x", [1])
        result.add_series("s", [1.0])
        text = result.to_text()
        assert "--" not in text  # no notes/reference lines

    def test_mean_of_missing_series_raises(self):
        result = FigureResult("f", "t", "x", [1])
        with pytest.raises(KeyError):
            result.mean("nope")


class TestCSVExport:
    def test_header_and_rows(self):
        result = FigureResult("f", "t", "bench", ["a", "b"])
        result.add_series("perf", [0.5, 1.0])
        csv = result.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "bench,perf"
        assert lines[1] == "a,0.5"
        assert lines[2] == "b,1.0"

    def test_round_trips_floats_exactly(self):
        result = FigureResult("f", "t", "x", [0.001])
        result.add_series("s", [0.123456789012345])
        value = result.to_csv().strip().splitlines()[1].split(",")[1]
        assert float(value) == 0.123456789012345


class TestCLICSVExport:
    def test_cli_writes_csv(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig3", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "fig3.csv"
        assert csv_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("pfail,")
