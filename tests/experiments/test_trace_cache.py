"""Persistent trace cache: round-trips, key discipline, corruption hygiene."""

from __future__ import annotations

import os

import pytest

from repro.cpu.config import L1_GEOMETRY
from repro.experiments.providers import TRACE_CACHE_ENV, TraceProvider, trace_key
from repro.experiments.runner import ExperimentRunner, RunnerSettings


def settings(**overrides) -> RunnerSettings:
    base = dict(
        n_instructions=2_000,
        warmup_instructions=500,
        n_fault_maps=1,
        benchmarks=("gzip",),
        seed=7,
    )
    base.update(overrides)
    return RunnerSettings(**base)


class TestTraceKey:
    def test_stable(self):
        a = trace_key("gzip", 7, 2500, L1_GEOMETRY)
        assert a == trace_key("gzip", 7, 2500, L1_GEOMETRY)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(benchmark="crafty"),
            dict(seed=8),
            dict(n_instructions=2501),
        ],
    )
    def test_sensitive_to_inputs(self, kwargs):
        base = dict(benchmark="gzip", seed=7, n_instructions=2500)
        changed = {**base, **kwargs}
        assert trace_key(**base, geometry=L1_GEOMETRY) != trace_key(
            **changed, geometry=L1_GEOMETRY
        )


class TestTraceCache:
    def test_cold_then_warm(self, tmp_path):
        first = TraceProvider(settings(), cache_dir=tmp_path)
        trace = first.get("gzip")
        assert first.generated == 1 and first.loaded == 0
        assert len(os.listdir(tmp_path)) == 1

        second = TraceProvider(settings(), cache_dir=tmp_path)
        reloaded = second.get("gzip")
        assert second.generated == 0 and second.loaded == 1
        assert reloaded.pc == trace.pc
        assert reloaded.iclass == trace.iclass
        assert reloaded.mem_addr == trace.mem_addr
        assert reloaded.src1 == trace.src1
        assert reloaded.src2 == trace.src2
        assert reloaded.dest == trace.dest
        assert reloaded.taken == trace.taken
        assert reloaded.name == trace.name

    def test_cached_trace_simulates_identically(self, tmp_path):
        cold = ExperimentRunner(settings(), trace_cache=os.fspath(tmp_path))
        warm = ExperimentRunner(settings(), trace_cache=os.fspath(tmp_path))
        from repro.experiments.configs import LV_BASELINE

        a = cold.run("gzip", LV_BASELINE)
        b = warm.run("gzip", LV_BASELINE)
        assert warm.traces.loaded == 1
        assert a == b

    def test_different_settings_do_not_collide(self, tmp_path):
        short = TraceProvider(settings(), cache_dir=tmp_path)
        longer = TraceProvider(settings(n_instructions=3_000), cache_dir=tmp_path)
        short.get("gzip")
        longer.get("gzip")
        assert longer.generated == 1  # distinct key, no false hit
        assert len(os.listdir(tmp_path)) == 2

    def test_memoises_within_process(self, tmp_path):
        provider = TraceProvider(settings(), cache_dir=tmp_path)
        assert provider.get("gzip") is provider.get("gzip")
        assert provider.generated == 1

    def test_no_cache_dir_means_no_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        provider = TraceProvider(settings())
        provider.get("gzip")
        assert provider.cache_dir is None
        assert provider.generated == 1

    def test_env_variable_enables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, os.fspath(tmp_path))
        TraceProvider(settings()).get("gzip")
        assert len(os.listdir(tmp_path)) == 1
        warm = TraceProvider(settings())
        warm.get("gzip")
        assert warm.loaded == 1 and warm.generated == 0


class TestCorruptionHygiene:
    def _entry_path(self, tmp_path) -> str:
        provider = TraceProvider(settings(), cache_dir=tmp_path)
        provider.get("gzip")
        (entry,) = os.listdir(tmp_path)
        return os.path.join(tmp_path, entry)

    @pytest.mark.parametrize("payload", [b"", b"not an npz at all", b"PK\x03\x04"])
    def test_garbage_entry_is_discarded_and_regenerated(self, tmp_path, payload):
        path = self._entry_path(tmp_path)
        with open(path, "wb") as fh:
            fh.write(payload)
        provider = TraceProvider(settings(), cache_dir=tmp_path)
        trace = provider.get("gzip")
        assert provider.discarded == 1
        assert provider.generated == 1
        assert len(trace) == 2_500
        # The regenerated entry replaced the corrupt one and reloads cleanly.
        fresh = TraceProvider(settings(), cache_dir=tmp_path)
        fresh.get("gzip")
        assert fresh.loaded == 1 and fresh.discarded == 0

    def test_truncated_entry_is_discarded_and_regenerated(self, tmp_path):
        path = self._entry_path(tmp_path)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # torn tail from a killed writer
        provider = TraceProvider(settings(), cache_dir=tmp_path)
        trace = provider.get("gzip")
        assert provider.discarded == 1 and provider.generated == 1
        assert len(trace) == 2_500

    def test_wrong_length_entry_is_discarded(self, tmp_path):
        # A hash collision cannot realistically do this, but a manually
        # copied file can: the guard re-checks the one cheap invariant.
        provider = TraceProvider(settings(), cache_dir=tmp_path)
        provider.get("gzip")
        (entry,) = os.listdir(tmp_path)
        other = TraceProvider(settings(n_instructions=3_000), cache_dir=tmp_path)
        other.get("gzip")
        paths = sorted(
            os.path.join(tmp_path, p) for p in os.listdir(tmp_path)
        )
        long_entry = [p for p in paths if os.path.basename(p) != entry][0]
        os.replace(long_entry, os.path.join(tmp_path, entry))
        reread = TraceProvider(settings(), cache_dir=tmp_path)
        trace = reread.get("gzip")
        assert reread.discarded == 1 and reread.generated == 1
        assert len(trace) == 2_500


class TestTmpHygiene:
    def test_stale_tmp_files_are_swept(self, tmp_path):
        old = tmp_path / ".trace-dead.npz.tmp"
        old.write_bytes(b"orphan from a killed worker")
        os.utime(old, (0, 0))  # ancient mtime
        fresh = tmp_path / ".trace-live.npz.tmp"
        fresh.write_bytes(b"in-flight write from a live worker")
        entry = tmp_path / "not-a-tmp.npz"
        entry.write_bytes(b"real entry, untouched")
        TraceProvider(settings(), cache_dir=tmp_path)
        assert not old.exists()
        assert fresh.exists()
        assert entry.exists()
