"""ExperimentRunner.run_batch: store dedup, lane widths, figure identity."""

from __future__ import annotations

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.configs import LV_BASELINE, LV_BLOCK, LV_WORD
from repro.experiments.runner import ExperimentRunner, RunnerSettings

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=5,
    benchmarks=("gzip",),
)


@pytest.fixture(autouse=True)
def _wide_open_batching(monkeypatch):
    """The suite's tiny map counts sit below the production crossover;
    drop it so these tests exercise the vectorised path."""
    monkeypatch.setattr(runner_module, "MIN_BATCH_LANES", 2)


def test_batched_results_match_legacy_path():
    legacy = ExperimentRunner(SETTINGS, lanes=1)
    batched = ExperimentRunner(SETTINGS)
    expected = [
        legacy.run("gzip", LV_BLOCK, m) for m in range(SETTINGS.n_fault_maps)
    ]
    assert batched.run_batch("gzip", LV_BLOCK) == expected
    # Everything was stored under the same keys the per-map path uses.
    for m in range(SETTINGS.n_fault_maps):
        assert batched.cached("gzip", LV_BLOCK, m) == expected[m]


def test_batch_skips_stored_lanes():
    runner = ExperimentRunner(SETTINGS)
    runner.run("gzip", LV_BLOCK, 1)
    runner.run("gzip", LV_BLOCK, 3)
    executed_before = runner.simulations_executed
    results = runner.run_batch("gzip", LV_BLOCK)
    assert len(results) == SETTINGS.n_fault_maps
    assert runner.simulations_executed == executed_before + 3
    # A second pass is a pure store read.
    assert runner.run_batch("gzip", LV_BLOCK) == results
    assert runner.simulations_executed == executed_before + 3


def test_lane_width_bounds_batches():
    narrow = ExperimentRunner(SETTINGS, lanes=2)
    wide = ExperimentRunner(SETTINGS)
    assert narrow.run_batch("gzip", LV_BLOCK) == wide.run_batch("gzip", LV_BLOCK)


def test_fault_independent_config_collapses():
    runner = ExperimentRunner(SETTINGS)
    results = runner.run_batch("gzip", LV_WORD)
    assert results == [runner.run("gzip", LV_WORD)]
    assert runner.simulations_executed == 1


def test_subset_and_order_preserved():
    runner = ExperimentRunner(SETTINGS)
    subset = runner.run_batch("gzip", LV_BLOCK, [3, 0, 3])
    assert subset[0] == runner.run("gzip", LV_BLOCK, 3)
    assert subset[1] == runner.run("gzip", LV_BLOCK, 0)
    assert subset[2] == subset[0]


def test_normalized_series_identical_across_paths():
    legacy = ExperimentRunner(SETTINGS, lanes=1)
    batched = ExperimentRunner(SETTINGS)
    assert legacy.normalized_series(
        LV_BLOCK, LV_BASELINE
    ) == batched.normalized_series(LV_BLOCK, LV_BASELINE)


def test_invalid_lane_width_rejected():
    with pytest.raises(ValueError):
        ExperimentRunner(SETTINGS, lanes=0)


def test_narrow_chunks_use_per_map_path(monkeypatch):
    """Below the crossover the runner must not pay vectorisation
    overhead: the batched engine is never invoked."""
    monkeypatch.setattr(runner_module, "MIN_BATCH_LANES", 16)
    runner = ExperimentRunner(SETTINGS)

    def boom(*args, **kwargs):  # pragma: no cover - guard
        raise AssertionError("vectorised path used below the crossover")

    monkeypatch.setattr(
        runner_module.OutOfOrderPipeline, "run_batch", staticmethod(boom)
    )
    results = runner.run_batch("gzip", LV_BLOCK)
    assert len(results) == SETTINGS.n_fault_maps
