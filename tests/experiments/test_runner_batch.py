"""ExperimentRunner.run_batch: store dedup, lane widths, figure identity."""

from __future__ import annotations

import pytest

import repro.campaign.session as session_module
import repro.experiments.runner as runner_module
from repro.experiments.configs import LV_BASELINE, LV_BLOCK, LV_WORD
from repro.experiments.runner import ExperimentRunner, RunnerSettings

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=5,
    benchmarks=("gzip",),
)


@pytest.fixture(autouse=True)
def _wide_open_batching(monkeypatch):
    """The suite's tiny map counts sit below the production crossover;
    drop it so these tests exercise the vectorised path.  Sessions
    resolve the crossover from the session module at use time, so
    patching there reaches every runner built below."""
    monkeypatch.setattr(session_module, "MIN_BATCH_LANES", 2)


def test_batched_results_match_legacy_path():
    legacy = ExperimentRunner(SETTINGS, lanes=1)
    batched = ExperimentRunner(SETTINGS)
    expected = [
        legacy.run("gzip", LV_BLOCK, m) for m in range(SETTINGS.n_fault_maps)
    ]
    assert batched.run_batch("gzip", LV_BLOCK) == expected
    # Everything was stored under the same keys the per-map path uses.
    for m in range(SETTINGS.n_fault_maps):
        assert batched.cached("gzip", LV_BLOCK, m) == expected[m]


def test_batch_skips_stored_lanes():
    runner = ExperimentRunner(SETTINGS)
    runner.run("gzip", LV_BLOCK, 1)
    runner.run("gzip", LV_BLOCK, 3)
    executed_before = runner.simulations_executed
    results = runner.run_batch("gzip", LV_BLOCK)
    assert len(results) == SETTINGS.n_fault_maps
    assert runner.simulations_executed == executed_before + 3
    # A second pass is a pure store read.
    assert runner.run_batch("gzip", LV_BLOCK) == results
    assert runner.simulations_executed == executed_before + 3


def test_lane_width_bounds_batches():
    narrow = ExperimentRunner(SETTINGS, lanes=2)
    wide = ExperimentRunner(SETTINGS)
    assert narrow.run_batch("gzip", LV_BLOCK) == wide.run_batch("gzip", LV_BLOCK)


def test_fault_independent_config_collapses():
    runner = ExperimentRunner(SETTINGS)
    results = runner.run_batch("gzip", LV_WORD)
    assert results == [runner.run("gzip", LV_WORD)]
    assert runner.simulations_executed == 1


def test_subset_and_order_preserved():
    runner = ExperimentRunner(SETTINGS)
    subset = runner.run_batch("gzip", LV_BLOCK, [3, 0, 3])
    assert subset[0] == runner.run("gzip", LV_BLOCK, 3)
    assert subset[1] == runner.run("gzip", LV_BLOCK, 0)
    assert subset[2] == subset[0]


def test_normalized_series_identical_across_paths():
    legacy = ExperimentRunner(SETTINGS, lanes=1)
    batched = ExperimentRunner(SETTINGS)
    assert legacy.normalized_series(
        LV_BLOCK, LV_BASELINE
    ) == batched.normalized_series(LV_BLOCK, LV_BASELINE)


def test_invalid_lane_width_rejected():
    with pytest.raises(ValueError):
        ExperimentRunner(SETTINGS, lanes=0)


def test_narrow_chunks_use_per_map_path(monkeypatch):
    """Below the crossover the runner must not pay vectorisation
    overhead: the batched engine is never invoked."""
    monkeypatch.setattr(session_module, "MIN_BATCH_LANES", 16)
    runner = ExperimentRunner(SETTINGS)

    def boom(*args, **kwargs):  # pragma: no cover - guard
        raise AssertionError("vectorised path used below the crossover")

    monkeypatch.setattr(
        runner_module.OutOfOrderPipeline, "run_batch", staticmethod(boom)
    )
    results = runner.run_batch("gzip", LV_BLOCK)
    assert len(results) == SETTINGS.n_fault_maps


def test_settings_crossover_override_beats_module_default(monkeypatch):
    """``RunnerSettings(min_batch_lanes=...)`` wins over the module
    constant: raising it keeps this suite's 5-map chunks sequential even
    with the fixture's wide-open module patch."""
    settings = RunnerSettings(
        n_instructions=SETTINGS.n_instructions,
        warmup_instructions=SETTINGS.warmup_instructions,
        n_fault_maps=SETTINGS.n_fault_maps,
        benchmarks=SETTINGS.benchmarks,
        min_batch_lanes=16,
    )
    runner = ExperimentRunner(settings)
    assert runner.session.min_batch_lanes == 16

    def boom(*args, **kwargs):  # pragma: no cover - guard
        raise AssertionError("vectorised path used despite the override")

    monkeypatch.setattr(
        runner_module.OutOfOrderPipeline, "run_batch", staticmethod(boom)
    )
    results = runner.run_batch("gzip", LV_BLOCK)
    assert len(results) == settings.n_fault_maps


def test_crossover_overrides_never_enter_specs():
    """The batching knobs are execution policy, not campaign identity:
    two sessions differing only in crossovers produce identical specs
    (and therefore identical store task keys)."""
    plain = ExperimentRunner(SETTINGS)
    tuned = ExperimentRunner(
        RunnerSettings(
            n_instructions=SETTINGS.n_instructions,
            warmup_instructions=SETTINGS.warmup_instructions,
            n_fault_maps=SETTINGS.n_fault_maps,
            benchmarks=SETTINGS.benchmarks,
            min_batch_lanes=2,
            min_mega_lanes=8,
        )
    )
    assert tuned.session.min_batch_lanes == 2
    assert tuned.session.min_mega_lanes == 8
    assert plain.session.spec((LV_BLOCK,)) == tuned.session.spec((LV_BLOCK,))
    assert plain.session.task_key("gzip", LV_BLOCK, 0) == tuned.session.task_key(
        "gzip", LV_BLOCK, 0
    )


def test_crossover_overrides_accepted_by_session_run():
    """A session with crossover overrides must run its own specs: the
    spec-reconstructed settings hold the knob defaults, so the fidelity
    check has to adopt the session's execution knobs before comparing
    (regression: ``--min-batch-lanes`` used to raise the
    wrong-fidelity ValueError on every figure)."""
    settings = RunnerSettings(
        n_instructions=SETTINGS.n_instructions,
        warmup_instructions=SETTINGS.warmup_instructions,
        n_fault_maps=SETTINGS.n_fault_maps,
        benchmarks=SETTINGS.benchmarks,
        min_batch_lanes=1,
        min_mega_lanes=999,
    )
    with session_module.Session(settings) as session:
        spec = session.spec((LV_BLOCK,))
        for _event in session.run(spec):
            pass
        derived = session.derived(spec)
        assert derived.min_batch_lanes == 1
        assert derived.min_mega_lanes == 999
        assert session.store.get(session.task_key("gzip", LV_BLOCK, 0)) is not None
