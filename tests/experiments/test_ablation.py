"""Tests for the ablation studies (small scales for CI speed)."""

import pytest

from repro.experiments.ablation import (
    ABLATION_STUDIES,
    blocksize_prefetch_study,
    energy_study,
    granularity_performance_study,
    l2_low_voltage_study,
)

BENCH = ("crafty", "swim")
N = 6000


class TestGranularityStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return granularity_performance_study(benchmarks=BENCH, n_instructions=N)

    def test_series_present(self, result):
        assert set(result.series) == {"block-disable", "set-disable", "way-disable"}

    def test_block_beats_coarser(self, result):
        for i in range(len(result.index)):
            assert result.series["block-disable"][i] > result.series["set-disable"][i]
            assert (
                result.series["block-disable"][i] > result.series["way-disable"][i]
            )

    def test_coarse_schemes_devastating(self, result):
        """With ~0% capacity the cache degenerates to streaming via L2."""
        for value in result.series["way-disable"]:
            assert value < 0.85


class TestL2Study:
    @pytest.fixture(scope="class")
    def result(self):
        return l2_low_voltage_study(benchmarks=BENCH, n_instructions=N)

    def test_l2_disable_costs_less_than_l1(self, result):
        """Adding L2 faults must cost less than the L1 faults did:
        1 - perf(L1+L2) < 2 * (1 - perf(L1 only)) and the delta is small."""
        for i in range(len(result.index)):
            l1 = result.series["L1 only"][i]
            both = result.series["L1+L2"][i]
            assert both <= l1 + 1e-9
            assert l1 - both < 0.2  # second-order effect

    def test_notes_record_l2_capacity(self, result):
        assert "L2 capacity" in result.notes


class TestBlocksizePrefetchStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return blocksize_prefetch_study(
            benchmarks=("swim",), n_instructions=N, block_sizes=(32, 64)
        )

    def test_index_covers_grid(self, result):
        assert result.index == ["swim/32B", "swim/64B"]

    def test_smaller_blocks_keep_more_normalized_performance(self, result):
        """Sec. IV-B: at the same pfail, 32B blocks lose less of the
        fault-free performance than 64B blocks."""
        assert result.series["block-disable"][0] >= result.series["block-disable"][1] - 0.02

    def test_prefetch_never_catastrophic(self, result):
        for plain, pf in zip(
            result.series["block-disable"], result.series["block-disable+prefetch"]
        ):
            assert pf > plain - 0.10


class TestEnergyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return energy_study(benchmarks=BENCH, n_instructions=N)

    def test_block_disable_saves_vs_word_disable(self, result):
        for i in range(len(result.index)):
            assert (
                result.series["block-disable energy"][i]
                <= result.series["word-disable energy"][i] + 1e-9
            )

    def test_runtime_reported_as_slowdown(self, result):
        for value in result.series["block-disable runtime"]:
            assert value > 1.0  # 600MHz-class point vs Vcc-min clock


class TestRegistry:
    def test_all_studies_registered(self):
        assert set(ABLATION_STUDIES) == {
            "abl-granularity",
            "abl-l2",
            "abl-blocksize-prefetch",
            "abl-energy",
        }
