"""Tests for the command-line interface."""

import pytest

import repro.experiments.__main__ as cli
from repro.campaign.executors import SerialExecutor
from repro.campaign.resilience import RetryPolicy
from repro.experiments.__main__ import main

FAST_PERF_ARGS = [
    "fig8",
    "--instructions",
    "3000",
    "--warmup",
    "1000",
    "--maps",
    "2",
    "--benchmarks",
    "gzip",
]


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "fig8" in out
        assert "crafty" in out

    def test_analytical_figure(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "faulty_blocks" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "209920" in capsys.readouterr().out.replace(".0000", "")

    def test_multiple_targets(self, capsys):
        assert main(["fig5", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "fig7" in out

    def test_all_analytical(self, capsys):
        assert main(["all-analytical"]) == 0
        out = capsys.readouterr().out
        for fig in ("fig1", "table1", "fig3", "fig4", "fig5", "fig6", "fig7"):
            assert fig in out

    def test_unknown_target(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_performance_figure_with_small_settings(self, capsys):
        code = main(
            [
                "fig11",
                "--instructions",
                "3000",
                "--maps",
                "2",
                "--benchmarks",
                "swim",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "swim" in out

    def test_lanes_flag_reproduces_default_output(self, capsys):
        args = [
            "fig8",
            "--instructions",
            "2500",
            "--warmup",
            "500",
            "--maps",
            "3",
            "--benchmarks",
            "gzip",
        ]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main(args + ["--lanes", "2"]) == 0
        assert capsys.readouterr().out == default_out
        assert main(args + ["--lanes", "1"]) == 0
        assert capsys.readouterr().out == default_out

    def test_dry_run_prints_plan_without_simulating(self, capsys, tmp_path):
        args = [
            "fig8",
            "--instructions",
            "2000",
            "--maps",
            "2",
            "--benchmarks",
            "gzip",
            "--store",
            str(tmp_path),
            "--dry-run",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "work items : 6 (0 already in store, 6 to simulate)" in out
        assert "predicted schedule passes" in out
        # Nothing simulated: the store stayed empty.
        assert not (tmp_path / "results.jsonl").exists()

    def test_dry_run_reports_store_dedup_hits(self, capsys, tmp_path):
        args = [
            "fig8",
            "--instructions",
            "2000",
            "--maps",
            "2",
            "--benchmarks",
            "gzip",
            "--store",
            str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "work items : 6 (6 already in store, 0 to simulate)" in out
        assert "nothing to simulate (pure store hits)" in out

    def test_dry_run_analytical_only(self, capsys):
        assert main(["fig3", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "no store-backed simulations" in out

    def test_dry_run_flags_ablation_targets(self, capsys):
        """Ablation studies bypass the campaign store; the dry-run plan
        must say so instead of claiming there is nothing to simulate."""
        assert main(["abl-l2", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "abl-l2" in out
        assert "outside the campaign store" in out

    def test_max_retries_and_chunk_timeout_map_to_retry_policy(
        self, capsys, monkeypatch
    ):
        captured = {}

        class Recorder(SerialExecutor):
            def __init__(self, workers, retry=None):
                captured["workers"] = workers
                captured["retry"] = retry

        monkeypatch.setattr(cli, "PoolExecutor", Recorder)
        args = FAST_PERF_ARGS + [
            "--workers",
            "2",
            "--max-retries",
            "5",
            "--chunk-timeout",
            "9.5",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert captured["workers"] == 2
        assert captured["retry"] == RetryPolicy(max_attempts=6, chunk_timeout=9.5)

    def test_max_retries_zero_disables_retries(self, capsys, monkeypatch):
        captured = {}

        class Recorder(SerialExecutor):
            def __init__(self, workers, retry=None):
                captured["retry"] = retry

        monkeypatch.setattr(cli, "PoolExecutor", Recorder)
        assert main(FAST_PERF_ARGS + ["--workers", "2", "--max-retries", "0"]) == 0
        capsys.readouterr()
        assert captured["retry"].max_attempts == 1

    def test_quarantine_exits_nonzero_with_summary(self, capsys, monkeypatch):
        # Deterministic poison on every task: the campaign must not dump
        # a traceback but report the quarantine ledger and exit 3.
        monkeypatch.setenv("REPRO_CHAOS", "poison:1.0")
        code = main(FAST_PERF_ARGS + ["--workers", "2", "--max-retries", "0"])
        monkeypatch.delenv("REPRO_CHAOS")
        assert code == 3
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "re-run the same command" in err
        assert "--max-retries" in err
        assert "Traceback" not in err

    def test_keyboard_interrupt_exits_130_with_resume_hint(
        self, capsys, monkeypatch
    ):
        class Interrupting(SerialExecutor):
            def __init__(self, workers, retry=None):
                pass

            def run(self, session, plan):
                raise KeyboardInterrupt

        monkeypatch.setattr(cli, "PoolExecutor", Interrupting)
        assert main(FAST_PERF_ARGS + ["--workers", "2"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "resume" in err

    def test_mega_batch_flag_reproduces_default_output(self, capsys):
        """Cross-point mega-batching (the default) must be byte-identical
        to the per-point path, at multi-figure scope where campaign
        points actually merge."""
        args = [
            "fig8",
            "ext-incremental",
            "--instructions",
            "2500",
            "--warmup",
            "500",
            "--maps",
            "2",
            "--benchmarks",
            "gzip",
        ]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main(args + ["--no-mega-batch"]) == 0
        assert capsys.readouterr().out == default_out
