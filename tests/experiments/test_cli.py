"""Tests for the command-line interface."""

import pytest

import repro.experiments.__main__ as cli
from repro.campaign.executors import SerialExecutor
from repro.campaign.resilience import RetryPolicy
from repro.experiments.__main__ import main

FAST_PERF_ARGS = [
    "fig8",
    "--instructions",
    "3000",
    "--warmup",
    "1000",
    "--maps",
    "2",
    "--benchmarks",
    "gzip",
]


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "fig8" in out
        assert "crafty" in out

    def test_analytical_figure(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "faulty_blocks" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "209920" in capsys.readouterr().out.replace(".0000", "")

    def test_multiple_targets(self, capsys):
        assert main(["fig5", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "fig7" in out

    def test_all_analytical(self, capsys):
        assert main(["all-analytical"]) == 0
        out = capsys.readouterr().out
        for fig in ("fig1", "table1", "fig3", "fig4", "fig5", "fig6", "fig7"):
            assert fig in out

    def test_unknown_target(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_performance_figure_with_small_settings(self, capsys):
        code = main(
            [
                "fig11",
                "--instructions",
                "3000",
                "--maps",
                "2",
                "--benchmarks",
                "swim",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "swim" in out

    def test_lanes_flag_reproduces_default_output(self, capsys):
        args = [
            "fig8",
            "--instructions",
            "2500",
            "--warmup",
            "500",
            "--maps",
            "3",
            "--benchmarks",
            "gzip",
        ]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main(args + ["--lanes", "2"]) == 0
        assert capsys.readouterr().out == default_out
        assert main(args + ["--lanes", "1"]) == 0
        assert capsys.readouterr().out == default_out

    def test_dry_run_prints_plan_without_simulating(self, capsys, tmp_path):
        args = [
            "fig8",
            "--instructions",
            "2000",
            "--maps",
            "2",
            "--benchmarks",
            "gzip",
            "--store",
            str(tmp_path),
            "--dry-run",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "work items : 6 (0 already in store, 6 to simulate)" in out
        assert "predicted schedule passes" in out
        # Nothing simulated: the store stayed empty.
        assert not (tmp_path / "results.jsonl").exists()

    def test_dry_run_reports_store_dedup_hits(self, capsys, tmp_path):
        args = [
            "fig8",
            "--instructions",
            "2000",
            "--maps",
            "2",
            "--benchmarks",
            "gzip",
            "--store",
            str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "work items : 6 (6 already in store, 0 to simulate)" in out
        assert "nothing to simulate (pure store hits)" in out

    def test_dry_run_analytical_only(self, capsys):
        assert main(["fig3", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "no store-backed simulations" in out

    def test_dry_run_flags_ablation_targets(self, capsys):
        """Ablation studies bypass the campaign store; the dry-run plan
        must say so instead of claiming there is nothing to simulate."""
        assert main(["abl-l2", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "abl-l2" in out
        assert "outside the campaign store" in out

    def test_max_retries_and_chunk_timeout_map_to_retry_policy(
        self, capsys, monkeypatch
    ):
        captured = {}

        class Recorder(SerialExecutor):
            def __init__(self, workers, retry=None):
                captured["workers"] = workers
                captured["retry"] = retry

        monkeypatch.setattr(cli, "PoolExecutor", Recorder)
        args = FAST_PERF_ARGS + [
            "--workers",
            "2",
            "--max-retries",
            "5",
            "--chunk-timeout",
            "9.5",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert captured["workers"] == 2
        assert captured["retry"] == RetryPolicy(max_attempts=6, chunk_timeout=9.5)

    def test_max_retries_zero_disables_retries(self, capsys, monkeypatch):
        captured = {}

        class Recorder(SerialExecutor):
            def __init__(self, workers, retry=None):
                captured["retry"] = retry

        monkeypatch.setattr(cli, "PoolExecutor", Recorder)
        assert main(FAST_PERF_ARGS + ["--workers", "2", "--max-retries", "0"]) == 0
        capsys.readouterr()
        assert captured["retry"].max_attempts == 1

    def test_quarantine_exits_nonzero_with_summary(self, capsys, monkeypatch):
        # Deterministic poison on every task: the campaign must not dump
        # a traceback but report the quarantine ledger and exit 3.
        monkeypatch.setenv("REPRO_CHAOS", "poison:1.0")
        code = main(FAST_PERF_ARGS + ["--workers", "2", "--max-retries", "0"])
        monkeypatch.delenv("REPRO_CHAOS")
        assert code == 3
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "re-run the same command" in err
        assert "--max-retries" in err
        assert "Traceback" not in err

    def test_keyboard_interrupt_exits_130_with_resume_hint(
        self, capsys, monkeypatch
    ):
        class Interrupting(SerialExecutor):
            def __init__(self, workers, retry=None):
                pass

            def run(self, session, plan):
                raise KeyboardInterrupt

        monkeypatch.setattr(cli, "PoolExecutor", Interrupting)
        assert main(FAST_PERF_ARGS + ["--workers", "2"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "resume" in err

    def test_mega_batch_flag_reproduces_default_output(self, capsys):
        """Cross-point mega-batching (the default) must be byte-identical
        to the per-point path, at multi-figure scope where campaign
        points actually merge."""
        args = [
            "fig8",
            "ext-incremental",
            "--instructions",
            "2500",
            "--warmup",
            "500",
            "--maps",
            "2",
            "--benchmarks",
            "gzip",
        ]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main(args + ["--no-mega-batch"]) == 0
        assert capsys.readouterr().out == default_out


class TestSubcommands:
    """The subcommand dispatch: `run` (default + explicit alias),
    `serve`, `submit` — the historical figure CLI must be byte-identical
    with or without the `run` token."""

    def test_run_alias_is_byte_identical_for_dry_run(self, capsys):
        assert main(FAST_PERF_ARGS + ["--dry-run"]) == 0
        default = capsys.readouterr()
        assert main(["run"] + FAST_PERF_ARGS + ["--dry-run"]) == 0
        alias = capsys.readouterr()
        assert alias.out == default.out
        assert alias.err == default.err

    def test_run_alias_is_byte_identical_for_figures(self, capsys):
        assert main(["fig3"]) == 0
        default = capsys.readouterr().out
        assert main(["run", "fig3"]) == 0
        assert capsys.readouterr().out == default

    def test_serve_parser_shares_run_dests(self):
        args = cli._serve_parser().parse_args([])
        assert (args.host, args.port, args.workers) == ("127.0.0.1", 8631, 1)
        args = cli._serve_parser().parse_args(
            [
                "--port", "0",
                "--workers", "3",
                "--instructions", "2000",
                "--benchmarks", "gzip",
                "--no-store",
            ]
        )
        settings = cli._settings_from_args(args)
        assert settings.n_instructions == 2000
        assert settings.benchmarks == ("gzip",)
        store = cli._store_from_args(args)
        assert type(store).__name__ == "MemoryStore"

    def test_submit_spec_from_figures_matches_run_union(self):
        from repro.campaign.spec import CampaignSpec
        from repro.experiments.figures import configs_for_targets

        args = cli._submit_parser().parse_args(
            ["fig8", "--url", "http://x"] + FAST_PERF_ARGS[1:]
        )
        spec = cli._submit_spec(args)
        expected = CampaignSpec.from_settings(
            cli._settings_from_args(args), tuple(configs_for_targets(["fig8"]))
        )
        assert spec == expected

    def test_submit_spec_from_json_file(self, tmp_path):
        import json

        from repro.campaign.spec import CampaignSpec, RunnerSettings
        from repro.experiments.configs import LV_BASELINE

        spec = CampaignSpec.from_settings(
            RunnerSettings(n_instructions=1000, benchmarks=("gzip",)),
            (LV_BASELINE,),
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        args = cli._submit_parser().parse_args([str(path), "--url", "http://x"])
        assert cli._submit_spec(args) == spec

    def test_submit_rejects_non_performance_targets(self, capsys):
        assert main(["submit", "fig3", "--url", "http://x"]) == 2
        assert "unknown submit targets" in capsys.readouterr().err

    def test_submit_unreachable_server_exits_2(self, capsys):
        code = main(
            ["submit", "--url", "http://127.0.0.1:9", "--timeout", "0.5"]
            + FAST_PERF_ARGS
        )
        assert code == 2
        assert "[submit]" in capsys.readouterr().err

    def test_submit_end_to_end_streams_ndjson(self, capsysbinary):
        import json

        from repro.campaign.session import Session
        from repro.campaign.spec import RunnerSettings
        from repro.service.server import ServerThread

        settings = RunnerSettings(
            n_instructions=3000,
            warmup_instructions=1000,
            n_fault_maps=2,
            benchmarks=("gzip",),
        )
        with Session(settings) as session, ServerThread(session) as server:
            code = main(["submit"] + FAST_PERF_ARGS + ["--url", server.url])
        assert code == 0
        captured = capsysbinary.readouterr()
        lines = [
            json.loads(line)
            for line in captured.out.splitlines()
            if line.strip()
        ]
        # stdout is the complete wire stream: events, then the done line
        assert lines[-1]["done"] is True
        assert lines[-1]["failures"] == 0
        kinds = [line["event"] for line in lines[:-1]]
        assert kinds[0] == "PlanReady"
        assert kinds.count("PointResult") == 6
        assert b"[submit] done: failures=0" in captured.err
        # the NDJSON event lines replay through the wire codec
        from repro.campaign.events import event_from_dict

        for line in lines[:-1]:
            event_from_dict(line)
