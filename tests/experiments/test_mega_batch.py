"""Cross-point mega-batching: signatures, planning, group execution.

The mega-batch planner merges every pending (config, fault-map) lane of
a campaign that shares a benchmark trace and a pipeline batch signature
— across campaign points and figures — into one vectorised schedule
pass.  These tests pin the grouping rules, the store scatter/dedup, the
schedule-pass accounting, and bit-identity against the per-point path.
"""

from __future__ import annotations

import pytest

from repro.cpu.pipeline import OutOfOrderPipeline
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V6,
    LV_BLOCK_V10,
    LV_INCREMENTAL,
    LV_WORD,
)
from repro.experiments.parallel import plan_worker_batches, prefill_cache
from repro.experiments.runner import ExperimentRunner, RunnerSettings

SETTINGS = RunnerSettings(
    n_instructions=3_000,
    warmup_instructions=1_000,
    n_fault_maps=2,
    benchmarks=("gzip",),
)

#: Several campaign points; baseline and block-disabling share structure
#: (same latencies, no victim cache), the rest split off by signature.
CONFIGS = (LV_BASELINE, LV_WORD, LV_BLOCK, LV_BLOCK_V10, LV_INCREMENTAL)


def _all_items(settings, configs):
    for config in configs:
        if config.needs_fault_map:
            for m in range(settings.n_fault_maps):
                yield config, m
        else:
            yield config, None


@pytest.fixture()
def runner() -> ExperimentRunner:
    return ExperimentRunner(SETTINGS)


@pytest.fixture(scope="module")
def reference() -> dict:
    """Sequential per-point results (the legacy path) for every item."""
    sequential = ExperimentRunner(SETTINGS, lanes=1, mega_batch=False)
    return {
        (config.label, m): sequential.run("gzip", config, m)
        for config, m in _all_items(SETTINGS, CONFIGS)
    }


class TestSignatures:
    def test_structural_twins_share_a_signature(self, runner):
        # Fault-free baseline lanes ride along with block-disabling maps.
        assert runner.batch_signature(LV_BASELINE) == runner.batch_signature(
            LV_BLOCK
        )

    def test_structural_differences_split(self, runner):
        signatures = {
            runner.batch_signature(c)
            for c in (LV_BLOCK, LV_WORD, LV_BLOCK_V10, LV_BLOCK_V6)
        }
        # word-disabling still splits off (+1-cycle L1 and halved cache);
        # the V$ rows (16/8/no entries) now pad to one slot axis and
        # share the block-disabling signature — two distinct batches.
        assert len(signatures) == 2
        assert (
            runner.batch_signature(LV_BLOCK)
            == runner.batch_signature(LV_BLOCK_V6)
            == runner.batch_signature(LV_BLOCK_V10)
        )

    def test_signature_is_map_independent(self, runner):
        key0 = runner.build_pipeline(LV_BLOCK, 0).batch_key()
        key1 = runner.build_pipeline(LV_BLOCK, 1).batch_key()
        assert key0 == key1 == runner.batch_signature(LV_BLOCK)


class TestPlanning:
    def test_groups_merge_across_points(self, runner):
        plan = runner.plan_mega_batches(CONFIGS)
        merged = {
            tuple((c.label, m) for c, m in group.items) for group in plan
        }
        assert (
            ("baseline", None),
            ("block disabling", 0),
            ("block disabling", 1),
            ("block disabling+V$ 10T", 0),
            ("block disabling+V$ 10T", 1),
        ) in merged
        # Plans cover exactly the campaign's work items, once each.
        items = [item for group in plan for item in group.items]
        assert len(items) == len(list(_all_items(SETTINGS, CONFIGS)))

    def test_store_holes_are_dropped_first(self, runner):
        runner.run("gzip", LV_BLOCK, 0)
        plan = runner.plan_mega_batches((LV_BASELINE, LV_BLOCK))
        items = [item for group in plan for item in group.items]
        assert (LV_BLOCK, 0) not in items
        assert (LV_BLOCK, 1) in items

    def test_mega_off_plans_per_point(self):
        runner = ExperimentRunner(SETTINGS, mega_batch=False)
        plan = runner.plan_mega_batches(CONFIGS)
        for group in plan:
            assert len({config.label for config, _ in group.items}) == 1

    def test_duplicate_configs_collapse(self, runner):
        plan = runner.plan_mega_batches((LV_BLOCK, LV_BLOCK))
        items = [item for group in plan for item in group.items]
        assert len(items) == SETTINGS.n_fault_maps


class TestGroupExecution:
    def test_mixed_config_group_matches_sequential(self, runner, reference):
        items = [(LV_BASELINE, None), (LV_BLOCK, 0), (LV_BLOCK, 1)]
        results = runner.run_lane_group("gzip", items)
        assert results == [
            reference[(config.label, m)] for config, m in items
        ]
        # One vectorised pass, scattered to the per-point store keys.
        assert runner.schedule_passes == 1
        for config, m in items:
            assert runner.cached("gzip", config, m) == reference[
                (config.label, m)
            ]

    def test_heterogeneous_items_split_by_signature(self, runner, reference):
        # A word-disabling lane among block-disabling ones must not trip
        # the engine's sequential fallback: it splits into its own
        # (singleton, sequential) sub-batch.
        items = [(LV_BLOCK, 0), (LV_WORD, None), (LV_BLOCK, 1)]
        results = runner.run_lane_group("gzip", items)
        assert results == [
            reference[(config.label, m)] for config, m in items
        ]
        assert runner.schedule_passes == 2  # one batched + one sequential

    def test_store_holes_in_the_middle_of_a_group(self, runner, reference):
        runner.store_result(
            "gzip", LV_BLOCK, 0, reference[("block disabling", 0)]
        )
        items = [(LV_BASELINE, None), (LV_BLOCK, 0), (LV_BLOCK, 1)]
        results = runner.run_lane_group("gzip", items)
        assert results == [
            reference[(config.label, m)] for config, m in items
        ]
        assert runner.simulations_executed == 2  # the hole was a pure hit

    def test_explicit_single_lane_stays_sequential(self, reference):
        runner = ExperimentRunner(SETTINGS, lanes=1)
        items = [(LV_BASELINE, None), (LV_BLOCK, 0), (LV_BLOCK, 1)]

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("vectorised path used with lanes=1")

        original = OutOfOrderPipeline.run_batch
        OutOfOrderPipeline.run_batch = staticmethod(boom)
        try:
            results = runner.run_lane_group("gzip", items)
        finally:
            OutOfOrderPipeline.run_batch = original
        assert results == [
            reference[(config.label, m)] for config, m in items
        ]

    def test_duplicate_items_simulate_once(self, runner):
        items = [(LV_BLOCK, 0), (LV_BLOCK, 0), (LV_BLOCK, 1)]
        results = runner.run_lane_group("gzip", items)
        assert results[0] == results[1]
        assert runner.simulations_executed == 2


class TestRunMega:
    def test_fewer_schedule_passes_than_points(self, runner, reference):
        executed = runner.run_mega(CONFIGS)
        assert executed == len(list(_all_items(SETTINGS, CONFIGS)))
        points = len(CONFIGS) * len(SETTINGS.benchmarks)
        assert runner.schedule_passes < points
        for config, m in _all_items(SETTINGS, CONFIGS):
            assert runner.cached("gzip", config, m) == reference[
                (config.label, m)
            ]

    def test_rerun_is_pure_store_hits(self, runner):
        runner.run_mega(CONFIGS)
        executed = runner.simulations_executed
        assert runner.run_mega(CONFIGS) == 0
        assert runner.simulations_executed == executed

    def test_progress_reaches_total(self, runner):
        calls: list[tuple[int, int]] = []
        runner.run_mega(
            CONFIGS, progress=lambda done, total: calls.append((done, total))
        )
        assert calls
        assert calls[-1][0] == calls[-1][1] == len(
            list(_all_items(SETTINGS, CONFIGS))
        )


class TestParallelMega:
    def test_worker_batches_are_trace_groups(self, runner):
        batches = plan_worker_batches(runner, CONFIGS)
        flat = [task for batch in batches for task in batch]
        assert len(flat) == len(list(_all_items(SETTINGS, CONFIGS)))
        labels_per_batch = [
            {config.label for (_, config, _) in batch} for batch in batches
        ]
        # At least one dispatch unit spans several campaign points.
        assert any(len(labels) > 1 for labels in labels_per_batch)

    def test_parallel_prefill_matches_sequential(self, reference):
        parallel = ExperimentRunner(SETTINGS)
        executed = prefill_cache(parallel, CONFIGS, workers=2)
        assert executed == len(list(_all_items(SETTINGS, CONFIGS)))
        for config, m in _all_items(SETTINGS, CONFIGS):
            assert parallel.cached("gzip", config, m) == reference[
                (config.label, m)
            ]
        # Workers' schedule-pass counters aggregate into the parent.
        points = len(CONFIGS) * len(SETTINGS.benchmarks)
        assert 0 < parallel.schedule_passes < points
