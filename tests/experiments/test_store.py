"""Tests for the persistent result store and its campaign semantics."""

import dataclasses
import json
import subprocess
import sys
import warnings

import pytest

from repro.cpu.pipeline import SimResult
from repro.experiments.configs import (
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
)
from repro.experiments.parallel import pending_tasks, prefill_cache
from repro.experiments.runner import ExperimentRunner, RunnerSettings
from repro.experiments.keys import task_key
from repro.store import (
    DiskStore,
    MemoryStore,
    open_store,
    result_from_dict,
    result_to_dict,
)

SMALL = RunnerSettings(
    n_instructions=3000,
    n_fault_maps=2,
    warmup_instructions=1000,
    benchmarks=("crafty", "swim"),
)


def make_result(cycles: int = 1234) -> SimResult:
    return SimResult(
        benchmark="crafty",
        instructions=3000,
        cycles=cycles,
        branch_mispredictions=17,
        branch_predictions=210,
        hierarchy_stats={"l1d": {"accesses": 900, "miss_rate": 0.125}},
    )


class TestTaskKey:
    def test_deterministic(self):
        a = task_key(SMALL, "crafty", LV_BLOCK, 1)
        b = task_key(SMALL, "crafty", LV_BLOCK, 1)
        assert a == b

    def test_distinguishes_points(self):
        keys = {
            task_key(SMALL, "crafty", LV_BLOCK, 0),
            task_key(SMALL, "crafty", LV_BLOCK, 1),
            task_key(SMALL, "swim", LV_BLOCK, 0),
            task_key(SMALL, "crafty", LV_WORD, None),
            task_key(SMALL, "crafty", LV_BASELINE, None),
        }
        assert len(keys) == 5

    def test_fidelity_fields_change_key(self):
        base = task_key(SMALL, "crafty", LV_BLOCK, 0)
        for variant in (
            RunnerSettings(**{**_fields(SMALL), "n_instructions": 4000}),
            RunnerSettings(**{**_fields(SMALL), "warmup_instructions": 2000}),
            RunnerSettings(**{**_fields(SMALL), "seed": 7}),
            RunnerSettings(**{**_fields(SMALL), "pfail": 0.002}),
        ):
            assert task_key(variant, "crafty", LV_BLOCK, 0) != base

    def test_scope_fields_do_not_change_key(self):
        """Campaign scope (benchmark list, number of maps) selects which
        points run, not what each computes — quick campaigns must seed
        paper-scale ones."""
        base = task_key(SMALL, "crafty", LV_BLOCK, 0)
        wider = RunnerSettings(**{**_fields(SMALL), "n_fault_maps": 50})
        rescoped = RunnerSettings(
            **{**_fields(SMALL), "benchmarks": ("crafty",)}
        )
        assert task_key(wider, "crafty", LV_BLOCK, 0) == base
        assert task_key(rescoped, "crafty", LV_BLOCK, 0) == base

    def test_pipeline_config_changes_key(self):
        """Runners with different pipelines must not read each other's
        results out of a shared store."""
        from repro.cpu.config import PAPER_PIPELINE, PipelineConfig

        base = task_key(SMALL, "crafty", LV_BLOCK, 0)
        assert task_key(SMALL, "crafty", LV_BLOCK, 0, PAPER_PIPELINE) == base
        narrow = PipelineConfig(issue_width=2)
        assert task_key(SMALL, "crafty", LV_BLOCK, 0, narrow) != base

    def test_runner_with_custom_pipeline_gets_disjoint_store_rows(self, tmp_path):
        from repro.cpu.config import PipelineConfig

        default = ExperimentRunner(SMALL, store=DiskStore(tmp_path))
        default.run("crafty", LV_BASELINE)
        narrow = ExperimentRunner(
            SMALL,
            pipeline_config=PipelineConfig(issue_width=2),
            store=DiskStore(tmp_path),
        )
        assert narrow.cached("crafty", LV_BASELINE) is None

    def test_label_is_cosmetic(self):
        from repro.experiments.configs import RunConfig

        relabeled = RunConfig(
            "a different label", LV_BLOCK.scheme, LV_BLOCK.voltage
        )
        assert task_key(SMALL, "crafty", relabeled, 0) == task_key(
            SMALL, "crafty", LV_BLOCK, 0
        )

    def test_stable_across_processes(self):
        """The key is a content hash, not a Python hash: a fresh
        interpreter computes the identical string."""
        code = (
            "from repro.experiments.runner import RunnerSettings\n"
            "from repro.experiments.keys import task_key\n"
            "from repro.experiments.configs import LV_BLOCK\n"
            "s = RunnerSettings(n_instructions=3000, n_fault_maps=2,\n"
            "                   warmup_instructions=1000,\n"
            "                   benchmarks=('crafty', 'swim'))\n"
            "print(task_key(s, 'crafty', LV_BLOCK, 1))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == task_key(SMALL, "crafty", LV_BLOCK, 1)


class TestSerde:
    def test_round_trip(self):
        result = make_result()
        assert result_from_dict(result_to_dict(result)) == result

    def test_json_round_trip_preserves_floats(self):
        result = make_result()
        rehydrated = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert rehydrated == result
        assert (
            rehydrated.hierarchy_stats["l1d"]["miss_rate"]
            == result.hierarchy_stats["l1d"]["miss_rate"]
        )


class TestMemoryStore:
    def test_put_get(self):
        store = MemoryStore()
        assert store.get("k") is None
        assert "k" not in store
        store.put("k", make_result())
        assert store.get("k") == make_result()
        assert "k" in store
        assert len(store) == 1


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        first = DiskStore(tmp_path / "campaign")
        first.put("k1", make_result(100))
        first.put("k2", make_result(200))
        reopened = DiskStore(tmp_path / "campaign")
        assert reopened.get("k1") == make_result(100)
        assert reopened.get("k2") == make_result(200)
        assert len(reopened) == 2
        assert set(reopened.keys()) == {"k1", "k2"}

    def test_truncated_line_is_skipped_not_fatal(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("good", make_result(300))
        # Simulate a crash mid-append: a truncated JSON tail.
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "half", "result": {"benchmark": "cr')
        reopened = DiskStore(tmp_path)
        assert reopened.get("good") == make_result(300)
        assert reopened.get("half") is None
        assert reopened.skipped_lines == 1

    def test_garbage_and_blank_lines_tolerated(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("good", make_result(300))
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write("\n")
            fh.write("not json at all\n")
            fh.write('{"key": "no-result-field"}\n')
            fh.write('{"key": "bad", "result": {"cycles": 1}}\n')
        reopened = DiskStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.skipped_lines == 3  # blank lines are not counted

    def test_resumed_writes_survive_a_truncated_tail(self, tmp_path):
        """A crash can leave the file without a trailing newline; the next
        open must repair it so resumed results do not fuse onto (and get
        lost with) the corrupt line."""
        store = DiskStore(tmp_path)
        store.put("good", make_result(300))
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "half", "result": {"benchmark": "cr')  # no \n
        resumed = DiskStore(tmp_path)
        resumed.put("after-crash", make_result(400))
        reopened = DiskStore(tmp_path)
        assert reopened.get("good") == make_result(300)
        assert reopened.get("after-crash") == make_result(400)
        assert reopened.skipped_lines == 1

    def test_last_write_wins(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("k", make_result(1))
        store.put("k", make_result(2))
        with pytest.warns(UserWarning, match="duplicate"):
            assert DiskStore(tmp_path).get("k") == make_result(2)

    def test_open_store_helper(self, tmp_path):
        assert isinstance(open_store(None), MemoryStore)
        assert isinstance(open_store(""), MemoryStore)
        assert isinstance(open_store(tmp_path), DiskStore)


class TestDuplicateKeys:
    """Concurrent writers append duplicate keys; loading must dedupe
    (last write wins), warn, and count — and compact() must rewrite the
    log without them."""

    def _race(self, tmp_path) -> DiskStore:
        # Two store handles on one directory — the concurrent-writer
        # shape: each appends, neither sees the other's in-memory index.
        a = DiskStore(tmp_path)
        b = DiskStore(tmp_path)
        a.put("shared", make_result(1))
        b.put("shared", make_result(2))
        a.put("only-a", make_result(3))
        return a

    def test_load_dedupes_and_counts(self, tmp_path):
        self._race(tmp_path)
        with pytest.warns(UserWarning, match="duplicate result"):
            reopened = DiskStore(tmp_path)
        assert reopened.duplicate_lines == 1
        assert len(reopened) == 2
        assert reopened.get("shared") == make_result(2)  # last write wins
        assert reopened.get("only-a") == make_result(3)

    def test_clean_load_does_not_warn(self, tmp_path):
        DiskStore(tmp_path).put("k", make_result(5))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reopened = DiskStore(tmp_path)
        assert reopened.duplicate_lines == 0

    def test_compact_rewrites_without_duplicates(self, tmp_path):
        self._race(tmp_path)
        with pytest.warns(UserWarning):
            store = DiskStore(tmp_path)
        before = dict.fromkeys(store.keys())
        assert store.compact() == 1
        assert store.duplicate_lines == 0
        with open(store.path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert len(lines) == 2
        assert {entry["key"] for entry in lines} == set(before)
        # A reopen sees identical contents and no duplicates.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reopened = DiskStore(tmp_path)
        assert reopened.get("shared") == make_result(2)
        assert reopened.get("only-a") == make_result(3)

    def test_compact_drops_corrupt_lines_too(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("good", make_result(7))
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        reopened = DiskStore(tmp_path)
        assert reopened.skipped_lines == 1
        assert reopened.compact() == 1
        fresh = DiskStore(tmp_path)
        assert fresh.skipped_lines == 0
        assert fresh.get("good") == make_result(7)

    def test_compact_noop_on_clean_store(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("k", make_result(9))
        assert store.compact() == 0
        assert DiskStore(tmp_path).get("k") == make_result(9)


class TestStoreLifecycle:
    """The ResultStore context-manager satellite: flush/close semantics."""

    def test_open_store_context_manager(self, tmp_path):
        with open_store(tmp_path) as store:
            store.put("k", make_result())
            assert store._fh is not None  # persistent append handle
        assert store._fh is None  # released on exit
        assert DiskStore(tmp_path).get("k") == make_result()

    def test_put_after_close_reopens(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("k1", make_result(1))
        store.close()
        store.put("k2", make_result(2))  # lazily reopens the handle
        store.close()
        reopened = DiskStore(tmp_path)
        assert reopened.get("k1") == make_result(1)
        assert reopened.get("k2") == make_result(2)

    def test_flush_and_close_idempotent(self, tmp_path):
        store = DiskStore(tmp_path)
        store.flush()  # nothing buffered yet: no-op, no handle
        store.put("k", make_result())
        store.flush()
        store.close()
        store.close()

    def test_memory_store_lifecycle_noops(self):
        with MemoryStore() as store:
            store.put("k", make_result())
            store.flush()
        assert store.get("k") == make_result()  # still readable after close

    def test_sibling_compact_does_not_lose_appends(self, tmp_path):
        """A rename by another store instance (compact) must not leave
        this store appending to the unlinked old inode."""
        first = DiskStore(tmp_path)
        first.put("k1", make_result(1))
        sibling = DiskStore(tmp_path)
        sibling.compact()  # replaces results.jsonl via rename
        first.put("k2", make_result(2))  # must land in the live file
        final = DiskStore(tmp_path)
        assert final.get("k1") == make_result(1)
        assert final.get("k2") == make_result(2)

    def test_compact_releases_and_reopens_handle(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("k", make_result(1))
        store.put("k", make_result(2))  # duplicate key in the log
        with open(store.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "k", "result": {}}\n')  # unreadable line
        with pytest.warns(UserWarning, match="duplicate"):
            reread = DiskStore(tmp_path)
        assert reread.compact() == 2
        assert reread._fh is None
        reread.put("k2", make_result(3))  # append handle reopens
        final = DiskStore(tmp_path)
        assert final.get("k") == make_result(2)
        assert final.get("k2") == make_result(3)
        assert final.duplicate_lines == final.skipped_lines == 0


class TestCampaignResume:
    def test_runner_reads_through_disk_store(self, tmp_path):
        first = ExperimentRunner(SMALL, store=DiskStore(tmp_path))
        result = first.run("crafty", LV_BLOCK, 0)
        assert first.simulations_executed == 1
        second = ExperimentRunner(SMALL, store=DiskStore(tmp_path))
        assert second.run("crafty", LV_BLOCK, 0) == result
        assert second.simulations_executed == 0

    def test_interrupted_campaign_completes_only_remainder(self, tmp_path):
        """Kill-and-rerun: results checkpointed before the 'crash' are
        never simulated again."""
        killed = ExperimentRunner(SMALL, store=DiskStore(tmp_path))
        tasks = pending_tasks(killed, (LV_BASELINE, LV_BLOCK))
        assert len(tasks) == 6
        for task in tasks[:4]:  # the part that "finished" before the kill
            killed.run(*task)
        resumed = ExperimentRunner(SMALL, store=DiskStore(tmp_path))
        executed = prefill_cache(resumed, (LV_BASELINE, LV_BLOCK), workers=1)
        assert executed == 2
        assert prefill_cache(resumed, (LV_BASELINE, LV_BLOCK), workers=1) == 0

    def test_store_shared_across_config_objects_with_same_content(self, tmp_path):
        from repro.core.schemes import VoltageMode
        from repro.experiments.configs import RunConfig

        runner = ExperimentRunner(SMALL, store=DiskStore(tmp_path))
        runner.run("crafty", LV_BLOCK_V10, 0)
        clone = RunConfig(
            "same cache, new label",
            LV_BLOCK_V10.scheme,
            VoltageMode.LOW,
            LV_BLOCK_V10.victim_entries,
        )
        assert runner.cached("crafty", clone, 0) is not None
        assert pending_tasks(runner, (clone,)) == [
            ("crafty", clone, 1),
            ("swim", clone, 0),
            ("swim", clone, 1),
        ]


class TestWarmupCLIFix:
    def test_settings_from_args_preserves_env_warmup(self, monkeypatch):
        from repro.experiments.__main__ import _build_parser, _settings_from_args

        monkeypatch.setenv("REPRO_WARMUP", "12345")
        args = _build_parser().parse_args(["fig8"])
        assert _settings_from_args(args).warmup_instructions == 12345

    def test_warmup_flag_overrides_env(self, monkeypatch):
        from repro.experiments.__main__ import _build_parser, _settings_from_args

        monkeypatch.setenv("REPRO_WARMUP", "12345")
        args = _build_parser().parse_args(["fig8", "--warmup", "777"])
        assert _settings_from_args(args).warmup_instructions == 777


class TestCLICampaign:
    def test_second_invocation_executes_zero_simulations(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        argv = [
            "fig3",
            "fig8",
            "--instructions",
            "2000",
            "--maps",
            "2",
            "--benchmarks",
            "gzip",
            "--store",
            str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "simulations executed=6" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "simulations executed=0" in second.err
        # Figure output is bit-identical when read back from the store.
        assert first.out == second.out

    def test_store_and_no_store_conflict(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig3", "--store", str(tmp_path), "--no-store"])
        assert "not allowed with" in capsys.readouterr().err

    def test_no_store_forces_memory(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        argv = [
            "fig8",
            "--instructions",
            "2000",
            "--maps",
            "2",
            "--benchmarks",
            "gzip",
            "--no-store",
        ]
        assert main(argv) == 0
        assert "store=memory" in capsys.readouterr().err
        assert not (tmp_path / "results.jsonl").exists()


class TestDeprecatedShim:
    """``repro.experiments.store`` survives as a warning re-export shim."""

    def test_import_warns_and_re_exports(self):
        # A fresh interpreter so the module-level warning actually fires
        # (this process has long since cached the module).
        code = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro.experiments.store as shim\n"
            "assert any(issubclass(w.category, DeprecationWarning)\n"
            "           for w in caught), caught\n"
            "assert 'repro.store' in str(caught[0].message)\n"
            "import repro.store, repro.experiments.keys\n"
            "assert shim.DiskStore is repro.store.DiskStore\n"
            "assert shim.open_store is repro.store.open_store\n"
            "assert shim.task_key is repro.experiments.keys.task_key\n"
            "assert shim.STORE_SCHEMA_VERSION == "
            "repro.experiments.keys.STORE_SCHEMA_VERSION\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)


def _fields(settings: RunnerSettings) -> dict:
    return dataclasses.asdict(settings)
