"""Tests for figure data generation and the FigureResult container."""

import pytest

from repro.experiments.figures import (
    ANALYTICAL_FIGURES,
    PERFORMANCE_FIGURES,
    fig1_data,
    fig3_data,
    fig4_data,
    fig5_data,
    fig6_data,
    fig7_data,
    fig8_data,
    fig11_data,
    table1_data,
)
from repro.experiments.results import FigureResult
from repro.experiments.runner import ExperimentRunner, RunnerSettings


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        RunnerSettings(n_instructions=4000, n_fault_maps=2, benchmarks=("crafty", "swim"))
    )


class TestFigureResult:
    def test_series_length_validation(self):
        result = FigureResult("f", "t", "x", [1, 2, 3])
        with pytest.raises(ValueError):
            result.add_series("bad", [1.0])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FigureResult("f", "t", "x", [1, 2], series={"s": [1.0]})

    def test_mean(self):
        result = FigureResult("f", "t", "x", [1, 2])
        result.add_series("s", [0.5, 1.5])
        assert result.mean("s") == pytest.approx(1.0)

    def test_to_text_contains_everything(self):
        result = FigureResult("fig9", "Title here", "bench", ["a", "b"])
        result.add_series("col", [0.1, 0.2])
        result.notes = "a note"
        result.paper_reference = {"metric": 0.5}
        text = result.to_text()
        assert "fig9" in text
        assert "Title here" in text
        assert "col" in text
        assert "a note" in text
        assert "paper reports" in text


class TestAnalyticalFigures:
    def test_registry_complete(self):
        assert set(ANALYTICAL_FIGURES) == {
            "fig1",
            "table1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
        }

    def test_fig1_two_performance_regimes(self):
        result = fig1_data()
        conventional = result.series["perf_conventional(1a)"]
        below = result.series["perf_below_vccmin(1b)"]
        assert any(b < c for b, c in zip(below, conventional))
        # At nominal voltage the two coincide.
        assert below[0] == pytest.approx(conventional[0])

    def test_table1_matches_paper_exactly(self):
        result = table1_data()
        totals = dict(zip(result.index, result.series["total_transistors"]))
        for scheme, expected in result.paper_reference.items():
            assert totals[scheme] == expected

    def test_fig3_monotone_increasing(self):
        result = fig3_data()
        faulty = result.series["faulty_blocks"]
        assert all(b >= a for a, b in zip(faulty, faulty[1:]))
        assert faulty[0] == 0.0

    def test_fig4_is_distribution(self):
        result = fig4_data()
        assert sum(result.series["probability"]) == pytest.approx(1.0, abs=1e-6)

    def test_fig4_mass_concentrated_near_58pct(self):
        result = fig4_data()
        peak_bin = result.index[
            result.series["probability"].index(max(result.series["probability"]))
        ]
        assert 0.52 <= peak_bin <= 0.62

    def test_fig5_monotone_and_tiny_at_low_pfail(self):
        result = fig5_data()
        pwcf = result.series["whole_cache_failure"]
        assert all(b >= a for a, b in zip(pwcf, pwcf[1:]))
        assert pwcf[0] == 0.0

    def test_fig6_blocksize_ordering(self):
        result = fig6_data()
        c32 = result.series["32B"]
        c64 = result.series["64B"]
        c128 = result.series["128B"]
        for i in range(1, len(c32)):
            assert c32[i] > c64[i] > c128[i]

    def test_fig7_shape(self):
        result = fig7_data()
        capacity = result.series["capacity"]
        assert capacity[0] == pytest.approx(1.0)
        assert capacity[-1] < 0.5


class TestPerformanceFigures:
    def test_registry_complete(self):
        assert set(PERFORMANCE_FIGURES) == {
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "ext-incremental",
        }

    def test_fig8_series_names(self, runner):
        result = fig8_data(runner)
        assert list(result.series) == [
            "word disabling",
            "block disabling avg",
            "block disabling avg+V$ 10T",
            "block disabling min",
            "block disabling min+V$ 10T",
        ]
        assert result.index == ["crafty", "swim"]

    def test_fig8_min_below_avg(self, runner):
        result = fig8_data(runner)
        for avg, minimum in zip(
            result.series["block disabling avg"], result.series["block disabling min"]
        ):
            assert minimum <= avg + 1e-12

    def test_fig11_block_disable_is_baseline(self, runner):
        result = fig11_data(runner)
        for value in result.series["block disabling"]:
            assert value == pytest.approx(1.0)

    def test_fig11_word_disable_below_one(self, runner):
        result = fig11_data(runner)
        for value in result.series["word disabling"]:
            assert value < 1.0

    def test_all_performance_figures_run(self, runner):
        for figure_fn in PERFORMANCE_FIGURES.values():
            result = figure_fn(runner)
            assert result.series
            text = result.to_text()
            assert result.figure_id in text

    def test_benchmark_subset_spec_stays_on_the_session(self):
        """A spec that only narrows the benchmark scope (same fidelity)
        must run on the caller's session — counters included — not fork
        a derived one."""
        from repro.experiments.figures import figure_spec

        session = ExperimentRunner(
            RunnerSettings(
                n_instructions=4000, n_fault_maps=2, benchmarks=("crafty", "swim")
            )
        ).session
        spec = figure_spec(
            "fig11",
            RunnerSettings(
                n_instructions=4000, n_fault_maps=2, benchmarks=("swim",)
            ),
        )
        result = fig11_data(session, spec=spec)
        assert result.index == ["swim"]
        assert session.simulations_executed > 0  # ran here, not derived
