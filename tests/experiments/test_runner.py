"""Tests for the experiment runner (small settings for speed)."""

import pytest

from repro.core.schemes import VoltageMode
from repro.experiments.configs import (
    HV_BASELINE,
    HV_BLOCK,
    HV_WORD,
    LV_BASELINE,
    LV_BLOCK,
    LV_BLOCK_V10,
    LV_WORD,
    RunConfig,
)
from repro.experiments.runner import ExperimentRunner, RunnerSettings

SMALL = RunnerSettings(
    n_instructions=4000, n_fault_maps=2, benchmarks=("crafty", "swim")
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(SMALL)


class TestSettings:
    def test_quick_defaults(self):
        settings = RunnerSettings.quick()
        assert settings.n_instructions > 0
        assert settings.n_fault_maps > 0
        assert len(settings.benchmarks) == 26

    def test_paper_settings_use_50_maps(self):
        assert RunnerSettings.paper().n_fault_maps == 50

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTR", "1234")
        monkeypatch.setenv("REPRO_MAPS", "3")
        monkeypatch.setenv("REPRO_BENCHMARKS", "crafty, gzip")
        settings = RunnerSettings.from_env()
        assert settings.n_instructions == 1234
        assert settings.n_fault_maps == 3
        assert settings.benchmarks == ("crafty", "gzip")

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError):
            RunnerSettings(benchmarks=("notabench",))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            RunnerSettings(n_instructions=0)
        with pytest.raises(ValueError):
            RunnerSettings(n_fault_maps=0)


class TestRunConfig:
    def test_fault_dependence(self):
        assert LV_BLOCK.needs_fault_map
        assert LV_BLOCK_V10.needs_fault_map
        assert not LV_WORD.needs_fault_map
        assert not LV_BASELINE.needs_fault_map
        assert not HV_BLOCK.needs_fault_map

    def test_custom_config(self):
        config = RunConfig("x", "block-disable", VoltageMode.LOW, 4)
        assert config.needs_fault_map


class TestRunner:
    def test_trace_caching(self, runner):
        assert runner.trace("crafty") is runner.trace("crafty")

    def test_fault_map_count(self, runner):
        assert len(runner.fault_maps()) == 2

    def test_result_caching(self, runner):
        a = runner.run("swim", LV_BASELINE)
        b = runner.run("swim", LV_BASELINE)
        assert a is b

    def test_fault_config_requires_index(self, runner):
        with pytest.raises(ValueError):
            runner.run("swim", LV_BLOCK)

    def test_map_index_ignored_for_fixed_configs(self, runner):
        a = runner.run("swim", LV_BASELINE, map_index=0)
        b = runner.run("swim", LV_BASELINE, map_index=1)
        assert a is b

    def test_word_disable_slower_than_baseline_low_voltage(self, runner):
        base = runner.run("crafty", LV_BASELINE)
        word = runner.run("crafty", LV_WORD)
        assert word.cycles > base.cycles

    def test_block_disable_between_baseline_and_word(self, runner):
        base = runner.run("crafty", LV_BASELINE)
        block = runner.run("crafty", LV_BLOCK, map_index=0)
        assert block.cycles >= base.cycles

    def test_high_voltage_block_equals_baseline(self, runner):
        """Block-disabling at high voltage is *exactly* the baseline: same
        latencies, full cache, disable bits ignored."""
        base = runner.run("crafty", HV_BASELINE)
        block = runner.run("crafty", HV_BLOCK)
        assert block.cycles == base.cycles

    def test_high_voltage_word_pays_alignment_cycle(self, runner):
        base = runner.run("crafty", HV_BASELINE)
        word = runner.run("crafty", HV_WORD)
        assert word.cycles > base.cycles

    def test_normalized_series_structure(self, runner):
        series = runner.normalized_series(LV_WORD, LV_BASELINE)
        assert series.benchmarks == ("crafty", "swim")
        assert len(series.average) == 2
        assert all(0.0 < v <= 1.2 for v in series.average)
        assert all(m <= a + 1e-12 for m, a in zip(series.minimum, series.average))

    def test_normalized_series_rejects_fault_baseline(self, runner):
        with pytest.raises(ValueError):
            runner.normalized_series(LV_WORD, LV_BLOCK)

    def test_mean_penalty(self, runner):
        series = runner.normalized_series(LV_WORD, LV_BASELINE)
        assert series.mean_penalty == pytest.approx(1.0 - series.mean_average)
