"""Tests for the Vcc-min and DVS models (Fig. 1)."""

import numpy as np
import pytest

from repro.power.dvs import DVSModel, energy_per_task, scaling_curves
from repro.power.vccmin import DEFAULT_VCCMIN_MODEL, VccMinModel


class TestVccMinModel:
    def test_reliable_at_vccmin(self):
        model = VccMinModel()
        assert model.pfail(model.vcc_min) == 0.0
        assert model.pfail(model.vcc_nominal) == 0.0

    def test_exponential_growth_below(self):
        """One decade per `1/decade_per_volt` volts."""
        model = VccMinModel()
        step = 1.0 / model.decade_per_volt
        v1 = model.vcc_min - 2 * step
        v2 = model.vcc_min - 3 * step
        assert model.pfail(v2) / model.pfail(v1) == pytest.approx(10.0, rel=1e-6)

    def test_clamped_to_one(self):
        model = VccMinModel()
        assert model.pfail(0.01) == 1.0

    def test_voltage_for_pfail_inverts(self):
        model = VccMinModel()
        voltage = model.voltage_for_pfail(0.001)
        assert model.pfail(voltage) == pytest.approx(0.001, rel=1e-6)

    def test_paper_operating_point_below_vccmin(self):
        """pfail = 0.001 sits meaningfully below Vcc-min."""
        model = DEFAULT_VCCMIN_MODEL
        v = model.voltage_for_pfail(0.001)
        assert v < model.vcc_min
        assert v > model.threshold_safety_margin if hasattr(model, "threshold_safety_margin") else True

    def test_expected_faulty_cells_hundreds(self):
        """Section I: faults 'can be prevalent with 100s or even 1000s of
        faulty cells in an array'."""
        model = DEFAULT_VCCMIN_MODEL
        v = model.voltage_for_pfail(0.001)
        expected = model.expected_faulty_cells(v, 274_944)
        assert 100 < expected < 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            VccMinModel(vcc_min=1.2, vcc_nominal=1.0)
        with pytest.raises(ValueError):
            VccMinModel(pfail_at_vccmin=0.0)
        with pytest.raises(ValueError):
            DEFAULT_VCCMIN_MODEL.pfail(-0.5)
        with pytest.raises(ValueError):
            DEFAULT_VCCMIN_MODEL.voltage_for_pfail(1e-12)
        with pytest.raises(ValueError):
            DEFAULT_VCCMIN_MODEL.expected_faulty_cells(0.5, 0)


class TestDVSModel:
    def test_normalised_at_nominal(self):
        model = DVSModel()
        assert model.frequency(1.0) == pytest.approx(1.0)
        assert model.dynamic_power(1.0) == pytest.approx(1.0)

    def test_frequency_monotone_in_voltage(self):
        model = DVSModel()
        voltages = np.linspace(0.45, 1.0, 10)
        freqs = [model.frequency(v) for v in voltages]
        assert all(b > a for a, b in zip(freqs, freqs[1:]))

    def test_power_superlinear(self):
        """Cubic-zone behaviour: halving... power falls much faster than
        frequency."""
        model = DVSModel()
        assert model.dynamic_power(0.6) < 0.5 * model.frequency(0.6)

    def test_zero_below_threshold(self):
        model = DVSModel()
        assert model.frequency(0.3) == 0.0

    def test_performance_default_tracks_frequency(self):
        model = DVSModel()
        assert model.performance(0.8) == pytest.approx(model.frequency(0.8))

    def test_performance_with_ipc_factor(self):
        model = DVSModel()
        scaled = model.performance(0.6, lambda v: 0.9)
        assert scaled == pytest.approx(0.9 * model.frequency(0.6))

    def test_performance_rejects_absurd_ipc(self):
        model = DVSModel()
        with pytest.raises(ValueError):
            model.performance(0.6, lambda v: 7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DVSModel(threshold_voltage=0.9)
        with pytest.raises(ValueError):
            DVSModel(alpha=-1.0)


class TestScalingCurves:
    def test_curve_shapes(self):
        curve = scaling_curves(points=11)
        assert len(curve.voltages) == 11
        assert len(curve.power) == 11
        assert curve.voltages[0] == pytest.approx(1.0)

    def test_cubic_zone_mask(self):
        curve = scaling_curves(points=23)
        assert curve.cubic_zone.sum() > 0
        assert (~curve.cubic_zone).sum() > 0

    def test_sub_vccmin_performance_sublinear(self):
        """Fig. 1b: below Vcc-min, performance with a disabling scheme falls
        below the pure-frequency line."""
        model = DVSModel()
        with_ipc = scaling_curves(
            model, points=23, relative_ipc=lambda v: 0.9 if v < model.vccmin_model.vcc_min else 1.0
        )
        without = scaling_curves(model, points=23)
        below = ~with_ipc.cubic_zone
        assert np.all(with_ipc.performance[below] < without.performance[below])
        above = with_ipc.cubic_zone
        assert np.allclose(with_ipc.performance[above], without.performance[above])

    def test_min_voltage_validation(self):
        with pytest.raises(ValueError):
            scaling_curves(min_voltage=0.2)

    def test_energy_per_task(self):
        assert energy_per_task(0.5, 0.5) == pytest.approx(1.0)
        assert energy_per_task(0.25, 0.5) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            energy_per_task(1.0, 0.0)

    def test_below_vccmin_energy_win(self):
        """The paper's motivation: running below Vcc-min is an energy win
        per unit of work even after the IPC loss."""
        model = DVSModel()
        v_low = 0.55  # below the default 0.75 Vcc-min
        power = model.dynamic_power(v_low)
        performance = model.performance(v_low, lambda v: 0.9)
        energy_low = energy_per_task(power, performance)
        energy_at_vccmin = energy_per_task(
            model.dynamic_power(0.75), model.performance(0.75)
        )
        assert energy_low < energy_at_vccmin
