"""Tests for the energy accounting model."""

import pytest

from repro.cpu.pipeline import SimResult
from repro.power.dvs import DVSModel
from repro.power.energy import (
    EnergyComparison,
    EnergyModel,
    compare_operating_points,
)


def result_with_cycles(cycles: int) -> SimResult:
    return SimResult(
        benchmark="x",
        instructions=1000,
        cycles=cycles,
        branch_mispredictions=0,
        branch_predictions=0,
    )


@pytest.fixture
def model():
    return EnergyModel(dvs=DVSModel())


class TestEnergyModel:
    def test_power_at_nominal(self, model):
        assert model.power(1.0) == pytest.approx(1.0 + model.leakage_fraction)

    def test_power_decreases_with_voltage(self, model):
        assert model.power(0.6) < model.power(0.8) < model.power(1.0)

    def test_same_cycles_lower_voltage_less_energy_if_fast_enough(self, model):
        """Dynamic energy is frequency-independent; leakage grows with
        runtime. At moderate undervolting the net is still a big win."""
        run = result_with_cycles(10_000)
        assert model.run_energy(run, 0.8) < model.run_energy(run, 1.0)

    def test_energy_proportional_to_cycles(self, model):
        short = result_with_cycles(1_000)
        long = result_with_cycles(3_000)
        ratio = model.run_energy(long, 0.8) / model.run_energy(short, 0.8)
        assert ratio == pytest.approx(3.0)

    def test_no_clock_below_threshold(self, model):
        with pytest.raises(ValueError):
            model.run_energy(result_with_cycles(100), 0.3)

    def test_negative_leakage_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(dvs=DVSModel(), leakage_fraction=-0.1)

    def test_zero_leakage_energy_voltage_squared(self):
        """Without leakage, energy/task scales as V^2 for a fixed cycle
        count — the canonical DVS argument."""
        model = EnergyModel(dvs=DVSModel(), leakage_fraction=0.0)
        run = result_with_cycles(1_000)
        ratio = model.run_energy(run, 0.5) / model.run_energy(run, 1.0)
        assert ratio == pytest.approx(0.25, rel=1e-6)


class TestComparison:
    def test_identity_comparison(self, model):
        ref = result_with_cycles(10_000)
        out = compare_operating_points(
            model, ref, 0.8, {"same": (ref, 0.8)}
        )
        assert out[0].relative_energy == pytest.approx(1.0)
        assert out[0].relative_runtime == pytest.approx(1.0)
        assert out[0].energy_saving == pytest.approx(0.0)
        assert out[0].slowdown == pytest.approx(0.0)

    def test_undervolting_saves_energy_costs_time(self, model):
        ref = result_with_cycles(10_000)
        slower = result_with_cycles(11_000)  # scheme overhead in cycles
        out = compare_operating_points(
            model, ref, 0.75, {"low": (slower, 0.55)}
        )[0]
        assert out.relative_energy < 1.0
        assert out.relative_runtime > 1.0

    def test_labels_preserved(self, model):
        ref = result_with_cycles(100)
        out = compare_operating_points(
            model, ref, 0.8, {"a": (ref, 0.8), "b": (ref, 0.9)}
        )
        assert {c.label for c in out} == {"a", "b"}
